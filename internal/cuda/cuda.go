// Package cuda defines the device API surface that simulated training
// workers program against, and a local Driver implementation of it on top
// of the gpu and nccl substrates.
//
// The API deliberately mirrors the CUDA/NCCL call shapes the paper's
// mechanisms intercept: asynchronous kernel launches and memcpys onto
// streams, cudaEventRecord / cudaStreamWaitEvent for cross-stream ordering
// (Figure 3), cudaEventQuery for the watchdog's hang detection (§3.1), and
// collective calls that enqueue barrier operations (§4).
//
// All handles (Buf, Stream, Event, Comm) are plain integers so that calls
// can be serialized over the device-proxy wire (§4, Figure 2) and so the
// interception layer can hand out *virtual* handles and remap them to new
// physical handles after recovery re-creates GPU objects.
//
// Kernels are launched by registry name rather than function pointer for
// the same reason: a name plus immediate arguments crosses the wire and the
// replay log, a closure does not. Both the client and the device proxy
// server resolve names in the same Registry, exactly as real CUDA resolves
// kernel symbols in the loaded module on the device side.
package cuda

import (
	"errors"
	"fmt"

	"jitckpt/internal/gpu"
	"jitckpt/internal/nccl"
	"jitckpt/internal/tensor"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// Handle types. Zero values are invalid except DefaultStream.
type (
	// Buf is a device-memory buffer handle.
	Buf int
	// Stream is an execution stream handle. DefaultStream (0) always exists.
	Stream int
	// Event is a cudaEvent handle.
	Event int
	// Comm is a NCCL communicator handle.
	Comm int
)

// DefaultStream is the implicitly-created stream 0, the default target of
// memcpys — which is exactly why §3.2's checkpoint-time deadlock arises
// when stream 0 is blocked behind a StreamWaitEvent on a hung collective.
const DefaultStream Stream = 0

// Errors returned by the driver beyond those of the gpu and nccl packages.
var (
	ErrBadHandle     = errors.New("cuda: invalid handle")
	ErrUnknownKernel = errors.New("cuda: unknown kernel")
)

// KernelArgs is what a kernel function receives when its launch executes on
// the device: resolved buffer contents plus immediate arguments.
type KernelArgs struct {
	Bufs  []tensor.Vector
	IArgs []int64
	FArgs []float32
}

// KernelFunc is the host-side definition of a device kernel's effect.
type KernelFunc func(a KernelArgs) error

// Registry maps kernel names to implementations. Registries are shared
// between client and device-proxy server, like CUDA modules.
type Registry map[string]KernelFunc

// LaunchParams describes one kernel launch. Everything in it is
// wire-serializable.
type LaunchParams struct {
	Kernel string
	// Dur is the modelled execution time of the kernel.
	Dur vclock.Time
	// Bufs are the buffer handles the kernel reads/writes.
	Bufs []Buf
	// IArgs and FArgs are immediate scalar arguments.
	IArgs []int64
	FArgs []float32
}

// BufInfo describes a buffer for checkpointing and recovery: the (Tag, Seq,
// Bytes) triple is the replica-consistent tensor name from §4.3.
type BufInfo struct {
	Handle Buf
	Bytes  int64
	Elems  int
	Tag    string
	Seq    int
}

// API is the complete device API surface: what workers call, what the
// device proxy forwards, what the interception layer wraps, and what the
// replay log records. Every call takes the calling simulation process,
// because blocking calls suspend it in virtual time.
type API interface {
	// Memory management.
	Malloc(p *vclock.Proc, bytes int64, elems int, tag string) (Buf, error)
	Free(p *vclock.Proc, b Buf) error
	// MemcpyH2D asynchronously copies host data to the device on stream s.
	// The source is captured at call time.
	MemcpyH2D(p *vclock.Proc, dst Buf, src []float32, s Stream) error
	// MemcpyD2H synchronously copies device data to the host: it completes
	// only after all prior work on s (cudaMemcpy semantics).
	MemcpyD2H(p *vclock.Proc, src Buf, s Stream) ([]float32, error)
	// MemcpyD2D asynchronously copies between device buffers on stream s.
	MemcpyD2D(p *vclock.Proc, dst, src Buf, s Stream) error

	// Streams and events.
	StreamCreate(p *vclock.Proc) (Stream, error)
	StreamDestroy(p *vclock.Proc, s Stream) error
	StreamSynchronize(p *vclock.Proc, s Stream) error
	StreamWaitEvent(p *vclock.Proc, s Stream, ev Event) error
	EventCreate(p *vclock.Proc) (Event, error)
	EventRecord(p *vclock.Proc, ev Event, s Stream) error
	// EventQuery reports whether the event's last recorded work completed;
	// an unrecorded event reports complete, per CUDA.
	EventQuery(p *vclock.Proc, ev Event) (bool, error)
	EventSynchronize(p *vclock.Proc, ev Event) error
	EventDestroy(p *vclock.Proc, ev Event) error

	// Kernel launch (asynchronous).
	Launch(p *vclock.Proc, lp LaunchParams, s Stream) error

	// Device-wide operations.
	DeviceSynchronize(p *vclock.Proc) error
	GetLastError(p *vclock.Proc) error
	// BufList enumerates live buffers; BufChecksum hashes one buffer's
	// contents. Both serve the replay-log validation (§4.1) and the
	// transparent checkpoint path (§4.3).
	BufList(p *vclock.Proc) ([]BufInfo, error)
	BufChecksum(p *vclock.Proc, b Buf) (uint64, error)

	// Collectives (NCCL). CommInit blocks until all ranks rendezvous;
	// collective calls enqueue asynchronously on stream s.
	CommInit(p *vclock.Proc, key string, gen, nranks, rank int) (Comm, error)
	CommDestroy(p *vclock.Proc, c Comm) error
	AllReduce(p *vclock.Proc, c Comm, b Buf, s Stream) error
	Broadcast(p *vclock.Proc, c Comm, b Buf, root int, s Stream) error
	AllGather(p *vclock.Proc, c Comm, in, out Buf, s Stream) error
	ReduceScatter(p *vclock.Proc, c Comm, in, out Buf, s Stream) error
	Send(p *vclock.Proc, c Comm, b Buf, peer int, s Stream) error
	Recv(p *vclock.Proc, c Comm, b Buf, peer int, s Stream) error
	Barrier(p *vclock.Proc, c Comm, s Stream) error
}

// Params models host-side API costs and PCIe bandwidths.
type Params struct {
	// CallLatency is the host cost of issuing any API call.
	CallLatency vclock.Time
	// H2DBandwidth / D2HBandwidth model the PCIe link (the paper's example:
	// PCIe gen 4 at 32 GB/s). D2D uses device memory bandwidth.
	H2DBandwidth float64
	D2HBandwidth float64
	D2DBandwidth float64
}

// DefaultParams returns parameters for a PCIe gen-4 attached GPU.
func DefaultParams() Params {
	return Params{
		CallLatency:  2 * vclock.Microsecond,
		H2DBandwidth: 25e9,
		D2HBandwidth: 25e9,
		D2DBandwidth: 1500e9,
	}
}

// eventState is the device-side state of a cudaEvent.
type eventState struct {
	// fire is the completion of the most recent EventRecord, nil if the
	// event was never recorded.
	fire *vclock.Event
	op   *gpu.Op
}

// launchMode distinguishes the op shapes a pooled launchOp can take.
type launchMode int8

const (
	launchKernel launchMode = iota
	launchH2D
	launchD2D
)

// launchOp is the pooled per-launch state for the driver's asynchronous
// fire-and-forget ops (kernel launches and async memcpys). One launchOp is
// one in-flight op; when the stream finishes it, the op returns itself to
// the driver's free list, so steady-state launches allocate nothing. The
// issuer never retains a pointer to it (these ops are enqueued with
// EnqueueAsync and have no completion event), which is what makes reuse
// safe. Immediate arguments are copied in at launch time, giving
// capture-at-call semantics like the wire protocol it models.
type launchOp struct {
	d      *Driver
	mode   launchMode
	kernel string
	fn     KernelFunc
	bufs   []*gpu.Buffer
	iargs  []int64
	fargs  []float32
	host   []float32 // H2D staging copy, captured at call time
	args   KernelArgs
	op     gpu.Op
	next   *launchOp
}

func (d *Driver) getLaunch() *launchOp {
	lo := d.launchFree
	if lo == nil {
		lo = &launchOp{d: d}
		lo.op.NameFn = lo.name
		lo.op.Exec = lo.exec
		lo.op.Free = lo.release
		return lo
	}
	d.launchFree = lo.next
	lo.next = nil
	return lo
}

func (lo *launchOp) release() {
	for i := range lo.bufs {
		lo.bufs[i] = nil
	}
	lo.bufs = lo.bufs[:0]
	lo.fn = nil
	lo.op.Name = ""
	lo.op.Err = nil
	lo.next = lo.d.launchFree
	lo.d.launchFree = lo
}

// name is only called when a trace recorder is attached; memcpy modes set
// op.Name statically, so this formats kernel names alone.
func (lo *launchOp) name() string {
	return "kernel." + lo.kernel
}

func (lo *launchOp) exec(dev *gpu.Device) error {
	switch lo.mode {
	case launchH2D:
		copy(lo.bufs[0].Data, lo.host)
		return nil
	case launchD2D:
		copy(lo.bufs[0].Data, lo.bufs[1].Data)
		return nil
	}
	lo.args.Bufs = lo.args.Bufs[:0]
	for _, gb := range lo.bufs {
		lo.args.Bufs = append(lo.args.Bufs, gb.Data)
	}
	lo.args.IArgs = lo.iargs
	lo.args.FArgs = lo.fargs
	return lo.fn(lo.args)
}

// Driver is the local (non-proxied) implementation of API for one device.
type Driver struct {
	dev     *gpu.Device
	engine  *nccl.Engine
	kernels Registry
	params  Params

	streams    map[Stream]*gpu.Stream
	nextStream Stream
	events     map[Event]*eventState
	nextEvent  Event
	bufs       map[Buf]int // handle -> gpu buffer id
	nextBuf    Buf
	comms      map[Comm]*nccl.Comm
	nextComm   Comm

	launchFree *launchOp

	lastErr error
}

var _ API = (*Driver)(nil)

// NewDriver creates a driver for dev with the default stream pre-created.
func NewDriver(dev *gpu.Device, engine *nccl.Engine, kernels Registry, params Params) (*Driver, error) {
	d := &Driver{
		dev:        dev,
		engine:     engine,
		kernels:    kernels,
		params:     params,
		streams:    make(map[Stream]*gpu.Stream),
		nextStream: 1,
		events:     make(map[Event]*eventState),
		nextEvent:  1,
		bufs:       make(map[Buf]int),
		nextBuf:    1,
		comms:      make(map[Comm]*nccl.Comm),
		nextComm:   1,
	}
	gs, err := dev.NewStream()
	if err != nil {
		return nil, err
	}
	d.streams[DefaultStream] = gs
	return d, nil
}

// Device exposes the underlying device to infrastructure code (recovery
// paths operate server-side, next to the driver).
func (d *Driver) Device() *gpu.Device { return d.dev }

// BufData reads a buffer's contents directly from the device context,
// bypassing streams. It is infrastructure-side only (not part of API): the
// recovery controller uses it to salvage parameter state from a device
// whose driver is corrupt or whose streams are wedged — the caller charges
// the transfer time explicitly. It fails when GPU state is not accessible
// (sticky error) or the device is lost, the §4.2 strategy-3 cases.
func (d *Driver) BufData(b Buf) (tensor.Vector, error) {
	switch d.dev.Health() {
	case gpu.Hard:
		return nil, gpu.ErrDeviceLost
	case gpu.Sticky:
		return nil, gpu.ErrSticky
	}
	gb, err := d.buf(b)
	if err != nil {
		return nil, err
	}
	return gb.Data.Clone(), nil
}

// Engine exposes the collective engine.
func (d *Driver) Engine() *nccl.Engine { return d.engine }

// call charges the fixed host API latency and maps device health onto API
// errors. Both sticky errors and driver corruption poison every subsequent
// API call, as in real CUDA; the difference the recovery paths exploit is
// that a corrupt context's device *memory* remains readable through the
// proxy server's privileged BufData path (§4.2 strategy 2: "the GPU is
// still accessible"), while a sticky context's is not (strategy 3).
func (d *Driver) call(p *vclock.Proc) error {
	if d.params.CallLatency > 0 {
		p.Sleep(d.params.CallLatency)
	}
	switch d.dev.Health() {
	case gpu.Hard:
		d.lastErr = gpu.ErrDeviceLost
		return gpu.ErrDeviceLost
	case gpu.Sticky:
		d.lastErr = gpu.ErrSticky
		return gpu.ErrSticky
	case gpu.DriverCorrupt:
		d.lastErr = gpu.ErrCorrupt
		return gpu.ErrCorrupt
	}
	return nil
}

func (d *Driver) stream(s Stream) (*gpu.Stream, error) {
	gs, ok := d.streams[s]
	if !ok {
		return nil, fmt.Errorf("%w: stream %d", ErrBadHandle, s)
	}
	return gs, nil
}

func (d *Driver) buf(b Buf) (*gpu.Buffer, error) {
	id, ok := d.bufs[b]
	if !ok {
		return nil, fmt.Errorf("%w: buf %d", ErrBadHandle, b)
	}
	return d.dev.Buf(id)
}

// Malloc allocates device memory. See API.
func (d *Driver) Malloc(p *vclock.Proc, bytes int64, elems int, tag string) (Buf, error) {
	if err := d.call(p); err != nil {
		return 0, err
	}
	gb, err := d.dev.Alloc(bytes, elems, tag)
	if err != nil {
		d.lastErr = err
		return 0, err
	}
	h := d.nextBuf
	d.nextBuf++
	d.bufs[h] = gb.ID
	return h, nil
}

// Free releases device memory. See API.
func (d *Driver) Free(p *vclock.Proc, b Buf) error {
	if err := d.call(p); err != nil {
		return err
	}
	id, ok := d.bufs[b]
	if !ok {
		return fmt.Errorf("%w: buf %d", ErrBadHandle, b)
	}
	delete(d.bufs, b)
	return d.dev.Free(id)
}

// MemcpyH2D asynchronously copies host data to a device buffer. See API.
func (d *Driver) MemcpyH2D(p *vclock.Proc, dst Buf, src []float32, s Stream) error {
	if err := d.call(p); err != nil {
		return err
	}
	gb, err := d.buf(dst)
	if err != nil {
		return err
	}
	gs, err := d.stream(s)
	if err != nil {
		return err
	}
	lo := d.getLaunch()
	lo.mode = launchH2D
	lo.bufs = append(lo.bufs, gb)
	lo.host = append(lo.host[:0], src...) // capture at call time
	lo.op.Name = "memcpyH2D"
	lo.op.Dur = gpu.TransferTime(gb.ModelBytes, d.params.H2DBandwidth)
	gs.EnqueueAsync(&lo.op)
	return nil
}

// MemcpyD2H synchronously copies a device buffer to the host. See API.
func (d *Driver) MemcpyD2H(p *vclock.Proc, src Buf, s Stream) ([]float32, error) {
	if err := d.call(p); err != nil {
		return nil, err
	}
	gb, err := d.buf(src)
	if err != nil {
		return nil, err
	}
	gs, err := d.stream(s)
	if err != nil {
		return nil, err
	}
	var out []float32
	dur := gpu.TransferTime(gb.ModelBytes, d.params.D2HBandwidth)
	op := gpu.FuncOp("memcpyD2H", dur, func(dev *gpu.Device) error {
		out = append([]float32(nil), gb.Data...)
		return nil
	})
	done := gs.Enqueue(op)
	p.Wait(done) // cudaMemcpy D2H is synchronous: hangs if the stream is wedged
	if op.Err != nil {
		d.lastErr = op.Err
		return nil, op.Err
	}
	return out, nil
}

// MemcpyD2D asynchronously copies between device buffers. See API.
func (d *Driver) MemcpyD2D(p *vclock.Proc, dst, src Buf, s Stream) error {
	if err := d.call(p); err != nil {
		return err
	}
	db, err := d.buf(dst)
	if err != nil {
		return err
	}
	sb, err := d.buf(src)
	if err != nil {
		return err
	}
	gs, err := d.stream(s)
	if err != nil {
		return err
	}
	lo := d.getLaunch()
	lo.mode = launchD2D
	lo.bufs = append(lo.bufs, db, sb)
	lo.op.Name = "memcpyD2D"
	lo.op.Dur = gpu.TransferTime(sb.ModelBytes, d.params.D2DBandwidth)
	gs.EnqueueAsync(&lo.op)
	return nil
}

// StreamCreate creates a new execution stream. See API.
func (d *Driver) StreamCreate(p *vclock.Proc) (Stream, error) {
	if err := d.call(p); err != nil {
		return 0, err
	}
	gs, err := d.dev.NewStream()
	if err != nil {
		d.lastErr = err
		return 0, err
	}
	h := d.nextStream
	d.nextStream++
	d.streams[h] = gs
	return h, nil
}

// StreamDestroy destroys a stream, dropping queued work. See API.
func (d *Driver) StreamDestroy(p *vclock.Proc, s Stream) error {
	if err := d.call(p); err != nil {
		return err
	}
	gs, ok := d.streams[s]
	if !ok {
		return fmt.Errorf("%w: stream %d", ErrBadHandle, s)
	}
	delete(d.streams, s)
	return d.dev.DestroyStream(gs.ID)
}

// StreamSynchronize blocks until all work queued on s completes. See API.
func (d *Driver) StreamSynchronize(p *vclock.Proc, s Stream) error {
	if err := d.call(p); err != nil {
		return err
	}
	gs, err := d.stream(s)
	if err != nil {
		return err
	}
	sp := trace.Of(d.dev.Env()).Begin(p.Now(), "cuda", d.dev.Lane(), "stream-sync", "stream", int(s))
	p.Wait(gs.DrainEvent()) // hangs if the stream is wedged at a collective
	sp.End(p.Now())
	if err := d.healthErr(); err != nil {
		return err
	}
	// Surface async op failures (failed collectives, poisoned event
	// waits): the stream is drained but its work did not all succeed.
	if err := gs.AsyncErr(); err != nil {
		trace.Of(d.dev.Env()).Instant(p.Now(), "cuda", d.dev.Lane(), "async-err", "err", err)
		d.lastErr = err
		return err
	}
	return nil
}

// StreamWaitEvent makes all future work on s wait for the event's most
// recent record. Waiting on a never-recorded event is a no-op, per CUDA.
func (d *Driver) StreamWaitEvent(p *vclock.Proc, s Stream, ev Event) error {
	if err := d.call(p); err != nil {
		return err
	}
	gs, err := d.stream(s)
	if err != nil {
		return err
	}
	es, ok := d.events[ev]
	if !ok {
		return fmt.Errorf("%w: event %d", ErrBadHandle, ev)
	}
	fire, rec := es.fire, es.op // capture the record at call time
	if fire == nil {
		return nil
	}
	gs.Enqueue(&gpu.Op{
		Name: "streamWaitEvent",
		Run: func(pp *vclock.Proc, dev *gpu.Device) error {
			pp.Wait(fire)
			if rec != nil && rec.Err != nil {
				return rec.Err // a poisoned event poisons the waiting stream
			}
			return nil
		},
	})
	return nil
}

// EventCreate creates a cudaEvent. See API.
func (d *Driver) EventCreate(p *vclock.Proc) (Event, error) {
	if err := d.call(p); err != nil {
		return 0, err
	}
	h := d.nextEvent
	d.nextEvent++
	d.events[h] = &eventState{}
	return h, nil
}

// EventRecord captures the current tail of stream s into the event. See API.
func (d *Driver) EventRecord(p *vclock.Proc, ev Event, s Stream) error {
	if err := d.call(p); err != nil {
		return err
	}
	es, ok := d.events[ev]
	if !ok {
		return fmt.Errorf("%w: event %d", ErrBadHandle, ev)
	}
	gs, err := d.stream(s)
	if err != nil {
		return err
	}
	// The record op completes with the stream's accumulated async error:
	// an event recorded after a failed collective is poisoned, and the
	// poison travels to whoever synchronizes with (or waits on) it — the
	// async-error propagation a NCCL watchdog relies on.
	op := &gpu.Op{Name: "eventRecord", Run: func(*vclock.Proc, *gpu.Device) error { return gs.AsyncErr() }}
	es.op = op
	es.fire = gs.Enqueue(op)
	return nil
}

// EventQuery reports whether the event's recorded work has completed.
// See API.
func (d *Driver) EventQuery(p *vclock.Proc, ev Event) (bool, error) {
	if err := d.call(p); err != nil {
		return false, err
	}
	es, ok := d.events[ev]
	if !ok {
		return false, fmt.Errorf("%w: event %d", ErrBadHandle, ev)
	}
	if es.fire == nil {
		return true, nil // unrecorded events report complete
	}
	if !es.fire.Triggered() {
		return false, nil
	}
	if es.op != nil && es.op.Err != nil {
		return true, es.op.Err
	}
	return true, nil
}

// EventSynchronize blocks until the event's recorded work completes.
// See API.
func (d *Driver) EventSynchronize(p *vclock.Proc, ev Event) error {
	if err := d.call(p); err != nil {
		return err
	}
	es, ok := d.events[ev]
	if !ok {
		return fmt.Errorf("%w: event %d", ErrBadHandle, ev)
	}
	if es.fire == nil {
		return nil
	}
	p.Wait(es.fire)
	if es.op != nil {
		return es.op.Err
	}
	return nil
}

// EventDestroy destroys a cudaEvent. See API.
func (d *Driver) EventDestroy(p *vclock.Proc, ev Event) error {
	if err := d.call(p); err != nil {
		return err
	}
	if _, ok := d.events[ev]; !ok {
		return fmt.Errorf("%w: event %d", ErrBadHandle, ev)
	}
	delete(d.events, ev)
	return nil
}

// Launch asynchronously enqueues a kernel. See API.
func (d *Driver) Launch(p *vclock.Proc, lp LaunchParams, s Stream) error {
	if err := d.call(p); err != nil {
		return err
	}
	fn, ok := d.kernels[lp.Kernel]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownKernel, lp.Kernel)
	}
	gs, err := d.stream(s)
	if err != nil {
		return err
	}
	lo := d.getLaunch()
	lo.mode = launchKernel
	lo.kernel = lp.Kernel
	lo.fn = fn
	for _, bh := range lp.Bufs {
		gb, err := d.buf(bh)
		if err != nil {
			lo.release()
			return err
		}
		lo.bufs = append(lo.bufs, gb)
	}
	lo.iargs = append(lo.iargs[:0], lp.IArgs...)
	lo.fargs = append(lo.fargs[:0], lp.FArgs...)
	lo.op.Dur = lp.Dur
	gs.EnqueueAsync(&lo.op)
	return nil
}

// DeviceSynchronize blocks until every stream drains. See API.
func (d *Driver) DeviceSynchronize(p *vclock.Proc) error {
	if err := d.call(p); err != nil {
		return err
	}
	// Deterministic order: ascending handle.
	for h := Stream(0); h < d.nextStream; h++ {
		if gs, ok := d.streams[h]; ok {
			p.Wait(gs.DrainEvent())
		}
	}
	return d.healthErr()
}

// GetLastError returns and clears the sticky last error. See API.
func (d *Driver) GetLastError(p *vclock.Proc) error {
	if err := d.healthErr(); err != nil {
		return err
	}
	err := d.lastErr
	d.lastErr = nil
	return err
}

// BufList enumerates live buffers in handle order. See API.
func (d *Driver) BufList(p *vclock.Proc) ([]BufInfo, error) {
	if err := d.call(p); err != nil {
		return nil, err
	}
	out := make([]BufInfo, 0, len(d.bufs))
	for h := Buf(1); h < d.nextBuf; h++ {
		id, ok := d.bufs[h]
		if !ok {
			continue
		}
		gb, err := d.dev.Buf(id)
		if err != nil {
			return nil, err
		}
		out = append(out, BufInfo{
			Handle: h,
			Bytes:  gb.ModelBytes,
			Elems:  len(gb.Data),
			Tag:    gb.Tag,
			Seq:    gb.Seq,
		})
	}
	return out, nil
}

// BufChecksum hashes a buffer's contents. See API.
func (d *Driver) BufChecksum(p *vclock.Proc, b Buf) (uint64, error) {
	if err := d.call(p); err != nil {
		return 0, err
	}
	gb, err := d.buf(b)
	if err != nil {
		return 0, err
	}
	return gb.Data.Checksum(), nil
}

// CommInit rendezvouses with the other ranks and returns a communicator
// handle. See API.
func (d *Driver) CommInit(p *vclock.Proc, key string, gen, nranks, rank int) (Comm, error) {
	if err := d.call(p); err != nil {
		return 0, err
	}
	nc, err := d.engine.CommInitRank(p, key, gen, nranks, rank, d.dev)
	if err != nil {
		d.lastErr = err
		return 0, err
	}
	h := d.nextComm
	d.nextComm++
	d.comms[h] = nc
	return h, nil
}

// CommDestroy invalidates a communicator handle. See API.
func (d *Driver) CommDestroy(p *vclock.Proc, c Comm) error {
	if err := d.call(p); err != nil {
		return err
	}
	nc, ok := d.comms[c]
	if !ok {
		return fmt.Errorf("%w: comm %d", ErrBadHandle, c)
	}
	nc.Destroy()
	delete(d.comms, c)
	return nil
}

// collectiveArgs resolves common collective-call handles.
func (d *Driver) collectiveArgs(c Comm, b Buf, s Stream) (*nccl.Comm, *gpu.Buffer, *gpu.Stream, error) {
	nc, ok := d.comms[c]
	if !ok {
		return nil, nil, nil, fmt.Errorf("%w: comm %d", ErrBadHandle, c)
	}
	var gb *gpu.Buffer
	if b != 0 {
		var err error
		gb, err = d.buf(b)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	gs, err := d.stream(s)
	if err != nil {
		return nil, nil, nil, err
	}
	return nc, gb, gs, nil
}

// AllReduce enqueues a sum-allreduce. See API.
func (d *Driver) AllReduce(p *vclock.Proc, c Comm, b Buf, s Stream) error {
	if err := d.call(p); err != nil {
		return err
	}
	nc, gb, gs, err := d.collectiveArgs(c, b, s)
	if err != nil {
		return err
	}
	_, err = nc.AllReduce(gs, gb)
	return err
}

// Broadcast enqueues a broadcast from root. See API.
func (d *Driver) Broadcast(p *vclock.Proc, c Comm, b Buf, root int, s Stream) error {
	if err := d.call(p); err != nil {
		return err
	}
	nc, gb, gs, err := d.collectiveArgs(c, b, s)
	if err != nil {
		return err
	}
	_, err = nc.Broadcast(gs, gb, root)
	return err
}

// AllGather enqueues an allgather. See API.
func (d *Driver) AllGather(p *vclock.Proc, c Comm, in, out Buf, s Stream) error {
	if err := d.call(p); err != nil {
		return err
	}
	nc, inBuf, gs, err := d.collectiveArgs(c, in, s)
	if err != nil {
		return err
	}
	outBuf, err := d.buf(out)
	if err != nil {
		return err
	}
	_, err = nc.AllGather(gs, inBuf, outBuf)
	return err
}

// ReduceScatter enqueues a reduce-scatter. See API.
func (d *Driver) ReduceScatter(p *vclock.Proc, c Comm, in, out Buf, s Stream) error {
	if err := d.call(p); err != nil {
		return err
	}
	nc, inBuf, gs, err := d.collectiveArgs(c, in, s)
	if err != nil {
		return err
	}
	outBuf, err := d.buf(out)
	if err != nil {
		return err
	}
	_, err = nc.ReduceScatter(gs, inBuf, outBuf)
	return err
}

// Send enqueues a point-to-point send. See API.
func (d *Driver) Send(p *vclock.Proc, c Comm, b Buf, peer int, s Stream) error {
	if err := d.call(p); err != nil {
		return err
	}
	nc, gb, gs, err := d.collectiveArgs(c, b, s)
	if err != nil {
		return err
	}
	_, err = nc.Send(gs, gb, peer)
	return err
}

// Recv enqueues a point-to-point receive. See API.
func (d *Driver) Recv(p *vclock.Proc, c Comm, b Buf, peer int, s Stream) error {
	if err := d.call(p); err != nil {
		return err
	}
	nc, gb, gs, err := d.collectiveArgs(c, b, s)
	if err != nil {
		return err
	}
	_, err = nc.Recv(gs, gb, peer)
	return err
}

// Barrier enqueues a data-free barrier. See API.
func (d *Driver) Barrier(p *vclock.Proc, c Comm, s Stream) error {
	if err := d.call(p); err != nil {
		return err
	}
	nc, _, gs, err := d.collectiveArgs(c, 0, s)
	if err != nil {
		return err
	}
	_, err = nc.Barrier(gs)
	return err
}

func (d *Driver) healthErr() error {
	switch d.dev.Health() {
	case gpu.Hard:
		return gpu.ErrDeviceLost
	case gpu.Sticky:
		return gpu.ErrSticky
	default:
		return nil
	}
}
