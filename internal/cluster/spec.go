package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"jitckpt/internal/core"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

// FleetWorkload is the per-tenant workload fleet simulations use: small
// enough that hundreds of concurrent copies stay fast, large enough to
// exercise every recovery path (4 data-parallel ranks over 2 nodes, so
// node loss, rack loss and elastic shrink are all meaningful).
func FleetWorkload() workload.Workload {
	return workload.Workload{
		Name: "fleet-tiny", GPU: "A100-80GB", ParamsB: 0.004, Nodes: 2, PerNode: 2,
		Topo: train.Topology{D: 4, P: 1, T: 1}, Framework: "fleet",
		Minibatch:  50 * vclock.Millisecond,
		CkptTarget: vclock.Seconds(0.5), RestoreTarget: vclock.Seconds(1),
		NCCLInitBase: 200 * vclock.Millisecond, NCCLInitPerRank: 5 * vclock.Millisecond,
		Teardown: 100 * vclock.Millisecond, CRIU: vclock.Second,
		Layers: 2, Hidden: 8,
	}
}

// ParseJobsSpec parses a fleet job-mix specification into JobSpecs. The
// grammar is comma-separated groups of
//
//	COUNTxPOLICY[@PRIORITY][:ITERS]
//
// e.g. "40xjit+elastic,8xpeer,2xtransparent@2:30" — forty elastic JIT
// tenants at priority 0, eight peer-shelter tenants, two high-priority
// transparent tenants running 30 iterations. Every tenant runs
// FleetWorkload; defaultIters applies when a group omits ITERS. The
// policies map supplies name resolution (the jitsim/jitbench name set).
func ParseJobsSpec(spec string, policies map[string]core.Policy, defaultIters int) ([]JobSpec, error) {
	if defaultIters <= 0 {
		defaultIters = 20
	}
	var jobs []JobSpec
	for _, group := range strings.Split(spec, ",") {
		group = strings.TrimSpace(group)
		if group == "" {
			continue
		}
		countStr, rest, ok := strings.Cut(group, "x")
		if !ok {
			return nil, fmt.Errorf("cluster: bad jobs group %q (want COUNTxPOLICY[@PRI][:ITERS])", group)
		}
		count, err := strconv.Atoi(strings.TrimSpace(countStr))
		if err != nil || count <= 0 {
			return nil, fmt.Errorf("cluster: bad count in jobs group %q", group)
		}
		iters := defaultIters
		if polPart, itStr, has := strings.Cut(rest, ":"); has {
			rest = polPart
			iters, err = strconv.Atoi(strings.TrimSpace(itStr))
			if err != nil || iters <= 0 {
				return nil, fmt.Errorf("cluster: bad iters in jobs group %q", group)
			}
		}
		pri := 0
		if polPart, priStr, has := strings.Cut(rest, "@"); has {
			rest = polPart
			pri, err = strconv.Atoi(strings.TrimSpace(priStr))
			if err != nil {
				return nil, fmt.Errorf("cluster: bad priority in jobs group %q", group)
			}
		}
		polName := strings.TrimSpace(rest)
		pol, ok := policies[polName]
		if !ok {
			return nil, fmt.Errorf("cluster: unknown policy %q in jobs group %q", polName, group)
		}
		for k := 0; k < count; k++ {
			jobs = append(jobs, JobSpec{
				Name:     fmt.Sprintf("%s.p%d.%d", polName, pri, len(jobs)),
				Priority: pri,
				Config: core.JobConfig{
					WL:     FleetWorkload(),
					Policy: pol,
					Iters:  iters,
					// Fleet tenants run a minutes-scale workload; the
					// single-job defaults (hour-scale optimal checkpoint
					// interval, 10 s hang timeout) would leave a whole-job
					// loss — no surviving rank to observe a communicator
					// error — undetected past the horizon.
					CkptInterval: vclock.Second,
					HangTimeout:  2 * vclock.Second,
				},
			})
		}
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("cluster: empty jobs spec %q", spec)
	}
	return jobs, nil
}
