// Package cluster runs many concurrent training jobs in one simulated
// cluster — the fleet-level view of just-in-time checkpointing. It
// inverts the single-job harness's ownership model: the cluster owns the
// virtual-time environment, the nodes and the allocator; jobs lease
// capacity through a priority-arbitrated Capacity interface and share
// failure domains, so one rack loss fans out to every tenant with ranks
// in that rack and the spare pool is a fleet-wide resource.
//
// Determinism is preserved end to end: one seed drives one environment,
// jobs are admitted in spec order, every arbitration decision iterates
// slices (never maps), and the whole run — including the merged trace —
// is byte-identical across repetitions.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"jitckpt/internal/core"
	"jitckpt/internal/failure"
	"jitckpt/internal/gpu"
	"jitckpt/internal/scheduler"
	"jitckpt/internal/trace"
	"jitckpt/internal/tracestream"
	"jitckpt/internal/vclock"
)

// JobSpec is one tenant in the fleet.
type JobSpec struct {
	// Name labels the job in traces and results ("job<i>" if empty).
	Name string
	// Priority orders capacity arbitration: higher-priority demand
	// reserves freed nodes and can preempt lower-priority elastic jobs
	// (which take their normal shrink path). Equal priorities break ties
	// by admission order.
	Priority int
	// StartAt delays the job's submission into the shared simulation
	// (0 = submitted at cluster start).
	StartAt vclock.Time
	// Config is the job's own configuration. Horizon and Shared are
	// overwritten by the cluster; everything else (workload, policy,
	// per-job failure plan, chaos) is the tenant's business.
	Config core.JobConfig
}

// Config configures one fleet run.
type Config struct {
	// Nodes and PerNode size the shared cluster.
	Nodes   int
	PerNode int
	// RackSize is the failure-domain width in nodes (0 = 2).
	RackSize int
	// Seed drives the single shared environment.
	Seed int64
	// Horizon bounds the whole simulation; jobs still running are
	// force-finished (accounting closes exactly) at this time.
	Horizon vclock.Time
	// Jobs are the tenants, admitted in order.
	Jobs []JobSpec
	// Failures is the cluster-scoped injection plan: node-granular faults
	// against shared hardware, hitting whichever tenant (or spare) holds
	// the node when they fire.
	Failures failure.NodePlan
	// Trace, when set, receives the simulation debug trace.
	Trace func(at vclock.Time, format string, args ...interface{})
	// Recorder, when set, receives the structured event trace of the
	// whole fleet under a single run ID.
	Recorder *trace.Recorder
	// Stream, when set, serves the fleet live: the recorder streams every
	// event into it (creating a retention-free recorder when Recorder is
	// nil, so a long-serving fleet pays bounded memory) and each tenant's
	// SharedSim carries it. This is the `jitsim -fleet -serve` path.
	Stream *tracestream.Stream
}

// JobResult is one tenant's outcome plus its fleet-side accounting.
type JobResult struct {
	Name     string
	Priority int
	// Res is the job's own result (nil if submission failed).
	Res *core.RunResult
	// Err reports a submission failure (bad config).
	Err error
	// NodeTime is the integral of nodes leased by this job over time.
	// Summed across jobs it equals FleetStats.UsedNodeTime exactly.
	NodeTime vclock.Time
}

// LatencyDist summarizes the fleet's per-tenant recovery latencies.
type LatencyDist struct {
	Count int
	Mean  vclock.Time
	P50   vclock.Time
	P95   vclock.Time
	Max   vclock.Time
}

// FleetStats is the cluster-wide aggregation.
type FleetStats struct {
	Nodes int
	GPUs  int
	Wall  vclock.Time
	// Node-time integrals. UsedNodeTime + IdleNodeTime + DownNodeTime ==
	// Nodes × Wall exactly (Reconcile enforces it): every node is leased,
	// free-and-healthy, or down at every instant.
	UsedNodeTime vclock.Time
	IdleNodeTime vclock.Time
	DownNodeTime vclock.Time
	// Goodput is the goodput-weighted utilization of total cluster
	// capacity: Σ_jobs (GPUs_j × Useful_j) / (GPUs × Wall).
	Goodput float64
	// Timeline is the spare-pool utilization timeline: node counts per
	// state after every ownership or health transition.
	Timeline []UtilPoint
	// JobsCompleted of JobsTotal finished all their iterations.
	JobsCompleted int
	JobsTotal     int
	// Preemptions counts arbiter-requested yields that victims honored.
	Preemptions int
	// RecoveryEpisodes is Σ over tenants of their recovery episodes; it
	// reconciles exactly against the per-job RecoveryLatencies series.
	RecoveryEpisodes int
	RecoveryLatency  LatencyDist
	// AppliedInjections / SkippedInjections count the cluster plan's
	// faults that landed vs found their target already lost.
	AppliedInjections int
	SkippedInjections int
	// SimStats are the shared environment's kernel counters — the
	// events/sec numerator for fleet benchmarking.
	SimStats vclock.Stats
}

// Result is the fleet run's outcome.
type Result struct {
	Jobs  []JobResult
	Fleet FleetStats
}

// Reconcile checks the exact fleet accounting identities:
//
//	used + idle + down == nodes × wall        (cluster node-time)
//	Σ_jobs NodeTime == used                   (lease attribution)
//	useful_j + wasted_j == wall_j             (every tenant, as ever)
//	Σ_jobs episodes == RecoveryEpisodes       (latency attribution)
//
// Any violation is a bug in the arbiter's transition bookkeeping, not a
// rounding artifact — all quantities are integer virtual time.
func (r *Result) Reconcile() error {
	f := &r.Fleet
	total := vclock.Time(f.Nodes) * f.Wall
	if got := f.UsedNodeTime + f.IdleNodeTime + f.DownNodeTime; got != total {
		return fmt.Errorf("cluster: used %v + idle %v + down %v = %v, want nodes×wall = %v",
			f.UsedNodeTime, f.IdleNodeTime, f.DownNodeTime, got, total)
	}
	var leased vclock.Time
	episodes := 0
	for i := range r.Jobs {
		j := &r.Jobs[i]
		leased += j.NodeTime
		if j.Res == nil {
			continue
		}
		a := &j.Res.Accounting
		if got := a.Useful + a.Wasted(); got != j.Res.WallTime {
			return fmt.Errorf("cluster: job %s useful %v + wasted %v = %v, want wall %v",
				j.Name, a.Useful, a.Wasted(), got, j.Res.WallTime)
		}
		episodes += len(j.Res.RecoveryLatencies)
	}
	if leased != f.UsedNodeTime {
		return fmt.Errorf("cluster: Σ job node-time %v != used node-time %v", leased, f.UsedNodeTime)
	}
	if episodes != f.RecoveryEpisodes {
		return fmt.Errorf("cluster: Σ job recovery episodes %d != fleet %d", episodes, f.RecoveryEpisodes)
	}
	return nil
}

// Run executes the fleet and returns per-job results plus the cluster
// aggregation.
func Run(cfg Config) (*Result, error) {
	if cfg.Nodes <= 0 || cfg.PerNode <= 0 {
		return nil, errors.New("cluster: Nodes and PerNode must be positive")
	}
	if len(cfg.Jobs) == 0 {
		return nil, errors.New("cluster: no jobs")
	}
	if cfg.Horizon <= 0 {
		return nil, errors.New("cluster: Horizon must be positive")
	}
	rackSize := cfg.RackSize
	if rackSize <= 0 {
		rackSize = 2
	}
	if err := cfg.Failures.Validate(cfg.Nodes); err != nil {
		return nil, err
	}
	for i := range cfg.Jobs {
		if at := cfg.Jobs[i].StartAt; at < 0 || at >= cfg.Horizon {
			return nil, fmt.Errorf("cluster: job %d starts at %v, outside [0, horizon %v)",
				i, at, cfg.Horizon)
		}
	}

	env := vclock.NewEnv(cfg.Seed)
	if cfg.Trace != nil {
		env.SetTracer(cfg.Trace)
	}
	rec := cfg.Recorder
	if cfg.Stream != nil && rec == nil {
		// Live streaming without a post-hoc log: bounded memory.
		rec = trace.New()
		rec.SetRetain(false)
	}
	if cfg.Stream != nil {
		rec.SetSink(cfg.Stream)
	}
	var fleetSpan trace.Span
	if rec != nil {
		rec.BeginRun(fmt.Sprintf("fleet jobs=%d nodes=%d seed=%d", len(cfg.Jobs), cfg.Nodes, cfg.Seed))
		trace.Attach(env, rec)
		fleetSpan = rec.Begin(0, "cluster", trace.LaneSim, "fleet",
			"jobs", len(cfg.Jobs), "nodes", cfg.Nodes, "seed", cfg.Seed)
	}
	cl := gpu.NewCluster(env, cfg.Nodes, cfg.PerNode, 1<<40)
	pool := scheduler.NewPool(env, cl.Nodes)
	arb := newArbiter(env, pool, cl.Nodes, rackSize)
	inj := &injector{a: arb}

	results := make([]JobResult, len(cfg.Jobs))
	for i := range cfg.Jobs {
		spec := cfg.Jobs[i]
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("job%d", i)
		}
		e := arb.addJob(name, spec.Priority)
		results[i] = JobResult{Name: name, Priority: spec.Priority}
		jc := spec.Config
		jc.Horizon = cfg.Horizon
		jc.Trace = nil
		jc.Recorder = nil
		idx := i
		jc.Shared = &core.SharedSim{
			Env:           env,
			Nodes:         cl.Nodes,
			Capacity:      e,
			AwaitCapacity: arb.await,
			RackSize:      rackSize,
			Label:         name,
			Stream:        cfg.Stream,
			OnDone: func(res *core.RunResult) {
				results[idx].Res = res
				e.finish()
			},
		}
		submit := func() {
			h, err := core.StartJob(jc)
			if err != nil {
				results[idx].Err = err
				e.finish()
				env.Tracef("cluster: job %s rejected: %v", name, err)
				return
			}
			e.handle = h
		}
		if spec.StartAt > 0 {
			at := spec.StartAt
			env.Go(name+".submit", func(p *vclock.Proc) {
				p.Sleep(at - p.Now())
				submit()
			})
		} else {
			submit()
		}
	}
	inj.start(cfg.Failures)

	if err := env.RunUntil(cfg.Horizon); err != nil {
		return nil, err
	}
	// Horizon: close out stragglers in admission order so their
	// accounting ends exactly at the cluster wall time.
	for _, e := range arb.entries {
		if e.handle != nil && !e.handle.Done() {
			e.handle.ForceFinish()
		}
		e.finish()
	}
	arb.close(env.Now())

	res := &Result{Jobs: results}
	f := &res.Fleet
	f.Nodes = cfg.Nodes
	f.GPUs = cfg.Nodes * cfg.PerNode
	f.Wall = env.Now()
	f.UsedNodeTime, f.IdleNodeTime, f.DownNodeTime = arb.used, arb.idle, arb.down
	f.Timeline = arb.timeline
	f.JobsTotal = len(cfg.Jobs)
	f.Preemptions = arb.preemptions
	f.AppliedInjections = inj.applied
	f.SkippedInjections = inj.skipped
	f.SimStats = env.Stats()
	var lats []vclock.Time
	usefulGPU := 0.0
	for i := range res.Jobs {
		res.Jobs[i].NodeTime = arb.entries[i].nodeTime
		jr := res.Jobs[i].Res
		if jr == nil {
			continue
		}
		if jr.Completed {
			f.JobsCompleted++
		}
		f.RecoveryEpisodes += len(jr.RecoveryLatencies)
		lats = append(lats, jr.RecoveryLatencies...)
		usefulGPU += float64(jr.Accounting.N) * float64(jr.Accounting.Useful)
	}
	if f.Wall > 0 && f.GPUs > 0 {
		f.Goodput = usefulGPU / (float64(f.GPUs) * float64(f.Wall))
	}
	f.RecoveryLatency = latencyDist(lats)
	// The authoritative fleet rollup instant, mirroring FleetStats from
	// the same variables: the streaming aggregator's fleet-level finals
	// are parsed from these args, so live and post-hoc numbers agree
	// exactly. Durations are integer nanoseconds; goodput's %v formatting
	// is the shortest representation that round-trips the float64.
	trace.Of(env).Instant(env.Now(), "cluster", trace.LaneSim, "fleet-acct",
		"nodes", f.Nodes, "gpus", f.GPUs, "wall", int64(f.Wall),
		"used", int64(f.UsedNodeTime), "idle", int64(f.IdleNodeTime),
		"down", int64(f.DownNodeTime), "goodput", f.Goodput,
		"completed", f.JobsCompleted, "total", f.JobsTotal,
		"preemptions", f.Preemptions, "episodes", f.RecoveryEpisodes,
		"applied", f.AppliedInjections, "skipped", f.SkippedInjections,
		"lat_count", f.RecoveryLatency.Count,
		"lat_mean", int64(f.RecoveryLatency.Mean),
		"lat_p50", int64(f.RecoveryLatency.P50),
		"lat_p95", int64(f.RecoveryLatency.P95),
		"lat_max", int64(f.RecoveryLatency.Max))
	fleetSpan.End(env.Now(), "completed", f.JobsCompleted, "of", f.JobsTotal)
	return res, nil
}

func latencyDist(lats []vclock.Time) LatencyDist {
	d := LatencyDist{Count: len(lats)}
	if len(lats) == 0 {
		return d
	}
	sorted := append([]vclock.Time(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum vclock.Time
	for _, l := range sorted {
		sum += l
	}
	d.Mean = sum / vclock.Time(len(sorted))
	d.P50 = sorted[len(sorted)/2]
	d.P95 = sorted[(len(sorted)*95)/100]
	d.Max = sorted[len(sorted)-1]
	return d
}
