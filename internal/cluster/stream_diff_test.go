package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"jitckpt/internal/trace"
	"jitckpt/internal/tracestream"
)

// normalizeResult clears per-job store pointers so two fleet results can
// be compared structurally (store identity differs between runs).
func normalizeResult(r *Result) Result {
	out := *r
	out.Jobs = append([]JobResult(nil), r.Jobs...)
	for i := range out.Jobs {
		if out.Jobs[i].Res != nil {
			cp := *out.Jobs[i].Res
			cp.Disk = nil
			out.Jobs[i].Res = &cp
		}
	}
	return out
}

// TestFleetStreamingDifferential runs the pinned fleet scenario post-hoc
// and with a live tracestream sink, and requires the merged timeline and
// the full Result to be identical (zero perturbation), the stream's
// fleet-level final rollup to equal FleetStats field for field —
// including the float64 goodput, which round-trips exactly through the
// fleet-acct instant — and every tenant's stream rollup to equal its
// post-hoc accounting.
func TestFleetStreamingDifferential(t *testing.T) {
	resA, recA, _ := tracedFleetRun(t, goldenFleetConfig())

	cfgB := goldenFleetConfig()
	recB := trace.New()
	cfgB.Recorder = recB
	st := tracestream.New(tracestream.Options{})
	cfgB.Stream = st
	resB, err := Run(cfgB)
	if err != nil {
		t.Fatalf("streaming Run: %v", err)
	}

	if a, b := fullText(t, recA), fullText(t, recB); !bytes.Equal(a, b) {
		t.Fatalf("streaming perturbed the fleet timeline:\n%s", firstDiff(a, b))
	}
	if a, b := normalizeResult(resA), normalizeResult(resB); !reflect.DeepEqual(a, b) {
		t.Fatalf("streaming perturbed the fleet result:\npost-hoc:  %+v\nstreaming: %+v", a.Fleet, b.Fleet)
	}

	// Fleet-level finals, bit for bit.
	m := st.Metrics()
	if m.Fleet == nil {
		t.Fatal("stream has no fleet final rollup")
	}
	f := resB.Fleet
	want := tracestream.FleetFinal{
		Nodes: f.Nodes, GPUs: f.GPUs, Wall: f.Wall,
		Used: f.UsedNodeTime, Idle: f.IdleNodeTime, Down: f.DownNodeTime,
		Goodput:       f.Goodput,
		JobsCompleted: f.JobsCompleted, JobsTotal: f.JobsTotal,
		Preemptions: f.Preemptions, RecoveryEpisodes: f.RecoveryEpisodes,
		AppliedInjections: f.AppliedInjections, SkippedInjections: f.SkippedInjections,
		LatCount: f.RecoveryLatency.Count, LatMean: f.RecoveryLatency.Mean,
		LatP50: f.RecoveryLatency.P50, LatP95: f.RecoveryLatency.P95,
		LatMax: f.RecoveryLatency.Max,
	}
	if *m.Fleet != want {
		t.Errorf("stream fleet rollup differs from FleetStats:\nstream:   %+v\npost-hoc: %+v", *m.Fleet, want)
	}
	if m.GoodputEstimate != f.Goodput {
		t.Errorf("final goodput estimate %v, want authoritative %v", m.GoodputEstimate, f.Goodput)
	}

	// The live pool level must have tracked the utilization timeline to
	// its last transition exactly.
	if len(f.Timeline) == 0 {
		t.Fatal("fleet recorded no utilization timeline")
	}
	last := f.Timeline[len(f.Timeline)-1]
	if !m.HavePool {
		t.Fatal("stream saw no cluster/pool instants")
	}
	if got, want := m.Pool, (tracestream.PoolLevel{T: last.At, Used: last.Used, Idle: last.Idle, Down: last.Down}); got != want {
		t.Errorf("stream pool level %+v, want timeline tail %+v", got, want)
	}

	// Every tenant's stream rollup equals its post-hoc accounting.
	for _, jr := range resB.Jobs {
		if jr.Res == nil {
			continue
		}
		js, ok := st.Job(jr.Name)
		if !ok {
			t.Errorf("stream did not register tenant %q", jr.Name)
			continue
		}
		if js.Final != jr.Res.Accounting {
			t.Errorf("tenant %q stream rollup differs:\nstream:   %+v\npost-hoc: %+v",
				jr.Name, js.Final, jr.Res.Accounting)
		}
		if js.Wall != jr.Res.WallTime {
			t.Errorf("tenant %q stream wall %v, result %v", jr.Name, js.Wall, jr.Res.WallTime)
		}
		if js.Completed != jr.Res.Completed {
			t.Errorf("tenant %q stream Completed=%v, result %v", jr.Name, js.Completed, jr.Res.Completed)
		}
	}

	// Recovery-episode count visible at /metrics must match the fleet's.
	if m.RecoveryEpisodes != f.RecoveryEpisodes {
		t.Errorf("stream counted %d recovery episodes, fleet %d", m.RecoveryEpisodes, f.RecoveryEpisodes)
	}
}
