package cluster

import (
	"fmt"
	"sort"

	"jitckpt/internal/core"
	"jitckpt/internal/gpu"
	"jitckpt/internal/scheduler"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// node accounting states. Every cluster node is in exactly one state at
// every instant; the arbiter integrates node-time per state at each
// transition, which is what makes the fleet reconciliation
// (used + idle + down == nodes × wall) exact rather than sampled.
const (
	stIdle uint8 = iota // free and healthy (or awaiting lazy discovery)
	stUsed              // leased to a job
	stDown              // failed and not yet repaired, not leased
)

// UtilPoint is one step of the spare-pool utilization timeline: the node
// counts per state immediately after a transition at At.
type UtilPoint struct {
	At   vclock.Time
	Used int
	Idle int
	Down int
}

// arbiter owns the cluster's node pool and arbitrates it across tenant
// leases: priority reservations starve lower-priority demand, preemption
// asks elastic victims to yield, and every ownership transition feeds the
// exact node-time accounting.
type arbiter struct {
	env      *vclock.Env
	pool     *scheduler.Pool
	nodes    []*gpu.Node
	rackSize int

	entries []*lease       // admission order (seq = index)
	owner   map[int]*lease // nodeID -> owning lease
	state   []uint8        // nodeID -> accounting state

	capEv *vclock.Event // re-created after every trigger (broadcast)

	// Node-time integrals, advanced at every transition.
	lastAt   vclock.Time
	usedNow  int
	idleNow  int
	downNow  int
	used     vclock.Time
	idle     vclock.Time
	down     vclock.Time
	timeline []UtilPoint

	preemptions int // yields honored fleet-wide
}

func newArbiter(env *vclock.Env, pool *scheduler.Pool, nodes []*gpu.Node, rackSize int) *arbiter {
	a := &arbiter{
		env:      env,
		pool:     pool,
		nodes:    nodes,
		rackSize: rackSize,
		owner:    make(map[int]*lease),
		state:    make([]uint8, len(nodes)),
		capEv:    env.NewEvent("cluster.capacity"),
		idleNow:  len(nodes),
	}
	a.timeline = append(a.timeline, UtilPoint{At: 0, Idle: len(nodes)})
	return a
}

// lease is one job's view of the cluster allocator. It satisfies
// core.Capacity: the harness and the transparent coordinator drive it
// exactly like a private scheduler.Pool, but every call is filtered
// through the arbiter's priority reservations and feeds fleet accounting.
type lease struct {
	a    *arbiter
	name string
	pri  int // higher wins
	seq  int // admission order; earlier wins among equals

	handle *core.JobHandle
	done   bool

	demand     int // outstanding denied want (0 = satisfied)
	ownedCount int
	lastAt     vclock.Time
	nodeTime   vclock.Time // integral of ownedCount — sums to arbiter.used
}

var _ core.Capacity = (*lease)(nil)

func (a *arbiter) addJob(name string, pri int) *lease {
	e := &lease{a: a, name: name, pri: pri, seq: len(a.entries)}
	a.entries = append(a.entries, e)
	return e
}

// advance integrates node-time up to now. Called before every state
// transition and at close.
func (a *arbiter) advance(now vclock.Time) {
	dt := now - a.lastAt
	if dt <= 0 {
		return
	}
	a.used += vclock.Time(a.usedNow) * dt
	a.idle += vclock.Time(a.idleNow) * dt
	a.down += vclock.Time(a.downNow) * dt
	a.lastAt = now
}

func (e *lease) advance(now vclock.Time) {
	if dt := now - e.lastAt; dt > 0 {
		e.nodeTime += vclock.Time(e.ownedCount) * dt
		e.lastAt = now
	}
}

// transition moves one node between accounting states.
func (a *arbiter) transition(id int, to uint8) {
	from := a.state[id]
	if from == to {
		return
	}
	switch from {
	case stIdle:
		a.idleNow--
	case stUsed:
		a.usedNow--
	default:
		a.downNow--
	}
	switch to {
	case stIdle:
		a.idleNow++
	case stUsed:
		a.usedNow++
	default:
		a.downNow++
	}
	a.state[id] = to
}

// notePoint appends (or overwrites, at equal times) a utilization
// timeline step with the current counts. When the fleet is traced it
// also emits the cluster/pool instant the streaming aggregator's
// spare-pool level reads from; repeated same-time emissions are fine —
// the stream keeps the last, mirroring the overwrite here.
func (a *arbiter) notePoint(now vclock.Time) {
	pt := UtilPoint{At: now, Used: a.usedNow, Idle: a.idleNow, Down: a.downNow}
	if rec := trace.Of(a.env); rec != nil {
		rec.Instant(now, "cluster", trace.LaneSim, "pool",
			"used", a.usedNow, "idle", a.idleNow, "down", a.downNow)
	}
	if n := len(a.timeline); n > 0 && a.timeline[n-1].At == now {
		a.timeline[n-1] = pt
		return
	}
	a.timeline = append(a.timeline, pt)
}

// bump wakes every AwaitCapacity waiter: capacity or reservations may
// have changed, so denied allocators should retry. The event is replaced
// before triggering so waiters that wake re-arm on the fresh one.
func (a *arbiter) bump() {
	ev := a.capEv
	a.capEv = a.env.NewEvent("cluster.capacity")
	ev.Trigger()
}

// await blocks until the next capacity change or the timeout; reports
// whether a change arrived.
func (a *arbiter) await(p *vclock.Proc, timeout vclock.Time) bool {
	return p.WaitTimeout(a.capEv, timeout)
}

// reservedAbove sums outstanding demand from running tenants that outrank
// e: strictly higher priority, or equal priority admitted earlier. Those
// tenants get first claim on freed capacity, which is what turns a yield
// into a transfer instead of a race.
func (a *arbiter) reservedAbove(e *lease) int {
	r := 0
	for _, o := range a.entries {
		if o == e || o.done || o.demand == 0 {
			continue
		}
		if o.pri > e.pri || (o.pri == e.pri && o.seq < e.seq) {
			r += o.demand
		}
	}
	return r
}

// preempt asks elastic lower-priority tenants to yield until the
// demander's deficit is plausibly covered. Victims are asked cheapest
// first: lowest priority, then latest admitted. A victim that yields
// releases its full width at the stop iteration and re-allocates under
// the demander's reservation, so its whole holding counts toward the
// deficit.
func (a *arbiter) preempt(demander *lease) {
	need := demander.demand - a.freeFor(demander)
	if need <= 0 {
		return
	}
	victims := make([]*lease, 0, len(a.entries))
	for _, o := range a.entries {
		if o == demander || o.done || o.handle == nil || o.pri >= demander.pri || o.ownedCount == 0 {
			continue
		}
		victims = append(victims, o)
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].pri != victims[j].pri {
			return victims[i].pri < victims[j].pri
		}
		return victims[i].seq > victims[j].seq
	})
	for _, v := range victims {
		if need <= 0 {
			return
		}
		if v.handle.RequestYield() {
			a.preemptions++
			need -= v.ownedCount
			a.env.Tracef("cluster: %s yields %d nodes to %s", v.name, v.ownedCount, demander.name)
		}
	}
}

func (a *arbiter) freeFor(e *lease) int {
	free := a.pool.FreeHealthy() - a.reservedAbove(e)
	if free < 0 {
		free = 0
	}
	return free
}

// nodeBad reports whether a node being released should be accounted down
// rather than idle: its host failed, or a device on it is permanently
// dead (the pool would lazily discover the latter at the next Allocate;
// the arbiter discovers it eagerly so accounting and FreeHealthy agree).
func nodeBad(n *gpu.Node) bool {
	if n.Failed {
		return true
	}
	for _, d := range n.Devices {
		if d.Health() == gpu.Hard {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// core.Capacity implementation
// ---------------------------------------------------------------------

func (e *lease) Allocate(n int, exclude map[int]bool) ([]*gpu.Node, error) {
	a := e.a
	if avail := a.freeFor(e); avail < n {
		e.setDemand(n)
		return nil, fmt.Errorf("cluster: %s wants %d nodes, %d free under reservations: %w",
			e.name, n, avail, scheduler.ErrNoCapacity)
	}
	nodes, err := a.pool.Allocate(n, exclude)
	if err != nil {
		e.setDemand(n)
		return nil, err
	}
	now := a.env.Now()
	a.advance(now)
	e.advance(now)
	for _, node := range nodes {
		a.owner[node.ID] = e
		a.transition(node.ID, stUsed)
	}
	e.ownedCount += len(nodes)
	a.notePoint(now)
	if e.demand != 0 {
		e.demand = 0
		a.bump() // reservations relaxed: lower-priority waiters may fit now
	}
	return nodes, nil
}

func (e *lease) setDemand(n int) {
	prev := e.demand
	e.demand = n
	e.a.preempt(e)
	if n < prev {
		// Shrinking demand relaxes reservations: lower-priority waiters
		// may fit now.
		e.a.bump()
	}
}

func (e *lease) Release(nodes []*gpu.Node) {
	ids := make([]int, 0, len(nodes))
	for _, n := range nodes {
		ids = append(ids, n.ID)
	}
	e.release(ids)
	e.a.pool.Release(nodes)
	e.a.bump()
}

func (e *lease) ReleaseByID(ids ...int) {
	e.release(ids)
	e.a.pool.ReleaseByID(ids...)
	e.a.bump()
}

// release runs the accounting side of a return: only nodes this lease
// still owns transition (a node already MarkFailed went used->down then;
// the pool-level release of it is a guarded no-op).
func (e *lease) release(ids []int) {
	a := e.a
	now := a.env.Now()
	a.advance(now)
	e.advance(now)
	for _, id := range ids {
		if a.owner[id] != e {
			continue
		}
		delete(a.owner, id)
		e.ownedCount--
		if nodeBad(a.nodes[id]) {
			// Returned broken (a failure the job detected but did not
			// attribute to this node, or a cluster fault on a leased
			// node): mark it out eagerly so the pool's free count and the
			// accounting agree from this instant, not from the pool's
			// next lazy discovery.
			a.pool.MarkFailed(id)
			a.transition(id, stDown)
		} else {
			a.transition(id, stIdle)
		}
	}
	a.notePoint(now)
}

func (e *lease) MarkFailed(nodeID int) {
	a := e.a
	now := a.env.Now()
	a.advance(now)
	e.advance(now)
	if own := a.owner[nodeID]; own == e {
		delete(a.owner, nodeID)
		e.ownedCount--
		a.transition(nodeID, stDown)
	} else if own == nil {
		a.transition(nodeID, stDown)
	}
	// A node owned by another tenant keeps counting as theirs until they
	// fail or release it.
	a.pool.MarkFailed(nodeID)
	a.notePoint(now)
}

func (e *lease) MarkRepaired(nodeID int) { e.a.markRepaired(nodeID) }

// markRepaired re-admits a node: shared by tenant repair events (a job's
// own NodeRepaired plan entries act on cluster hardware) and the
// cluster-scoped injector.
func (a *arbiter) markRepaired(nodeID int) {
	now := a.env.Now()
	a.advance(now)
	if a.owner[nodeID] == nil && a.state[nodeID] == stDown {
		a.transition(nodeID, stIdle)
	}
	a.pool.MarkRepaired(nodeID)
	a.notePoint(now)
	a.bump()
	a.notifyRepair()
}

// notifyRepair tells running degraded tenants capacity came back, highest
// priority first — the re-expand ordering of the fleet's elastic
// arbitration.
func (a *arbiter) notifyRepair() {
	order := make([]*lease, 0, len(a.entries))
	for _, e := range a.entries {
		if !e.done && e.handle != nil {
			order = append(order, e)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].pri != order[j].pri {
			return order[i].pri > order[j].pri
		}
		return order[i].seq < order[j].seq
	})
	for _, e := range order {
		e.handle.NoteRepairCapacity()
	}
}

func (e *lease) FreeHealthy() int { return e.a.freeFor(e) }

// finish closes the lease when its job is done: outstanding demand stops
// reserving capacity and waiters re-evaluate.
func (e *lease) finish() {
	if e.done {
		return
	}
	e.done = true
	if e.demand != 0 {
		e.demand = 0
	}
	e.a.bump()
}

// close advances every integral to the horizon and seals the timeline.
func (a *arbiter) close(now vclock.Time) {
	a.advance(now)
	for _, e := range a.entries {
		e.advance(now)
	}
	a.notePoint(now)
}
