package cluster

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"jitckpt/internal/core"
	"jitckpt/internal/failure"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden fleet trace in testdata/")

// fleetGoldenCats filters the pinned fleet timeline to the cluster
// narrative: the fleet span, per-tenant run/incarnation structure,
// cluster-scoped injections and detections, and elastic shrink /
// yield / expand decisions. Kernel-level noise is covered by the
// unfiltered determinism check.
var fleetGoldenCats = []string{"cluster", "core", "fail", "elastic"}

// goldenFleetConfig pins one representative fleet timeline: three
// tenants fill the cluster, a high-priority arrival preempts the
// elastic tenant out of its lease, then a RackDown fans out to the two
// tenants holding rack 0 and repairs bring the rack back.
func goldenFleetConfig() Config {
	plan := failure.NodePlan{Injections: []failure.NodeInjection{
		{At: 1500 * vclock.Millisecond, Node: 0, Kind: failure.RackDown},
	}}
	for i := 0; i < 4; i++ {
		plan.Injections = append(plan.Injections, failure.NodeInjection{
			At: 6*vclock.Second + vclock.Time(i)*vclock.Second, Node: i, Kind: failure.NodeRepaired,
		})
	}
	hi := fleetJob("hi", core.PolicyPCDisk, 5, 10)
	hi.StartAt = 500 * vclock.Millisecond
	return Config{
		Nodes: 6, PerNode: 2, RackSize: 4, Seed: 11, Horizon: 3 * vclock.Minute,
		Jobs: []JobSpec{
			fleetJob("d0", core.PolicyPCDisk, 0, 25),
			fleetJob("el", core.PolicyElasticJIT, 0, 120),
			fleetJob("d1", core.PolicyPCDisk, 0, 25),
			hi,
		},
		Failures: plan,
	}
}

// tracedFleetRun executes cfg with a fresh recorder and returns the
// result, the recorder, and the filtered text timeline.
func tracedFleetRun(t *testing.T, cfg Config) (*Result, *trace.Recorder, []byte) {
	t.Helper()
	rec := trace.New()
	cfg.Recorder = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := trace.WriteText(&buf, rec, trace.TextOptions{Cats: fleetGoldenCats}); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return res, rec, buf.Bytes()
}

func fullText(t *testing.T, rec *trace.Recorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteText(&buf, rec, trace.TextOptions{}); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenFleetTrace runs the pinned fleet scenario twice in-process
// and requires (a) the two complete, unfiltered merged timelines to be
// byte-identical — a fleet of concurrent tenants on one environment is
// still fully deterministic — and (b) the filtered timeline to match
// the checked-in golden. Regenerate with:
//
//	go test ./internal/cluster -run TestGoldenFleetTrace -update
func TestGoldenFleetTrace(t *testing.T) {
	res1, rec1, filtered := tracedFleetRun(t, goldenFleetConfig())
	res2, rec2, filtered2 := tracedFleetRun(t, goldenFleetConfig())
	if full1, full2 := fullText(t, rec1), fullText(t, rec2); !bytes.Equal(full1, full2) {
		t.Fatalf("two in-process fleet runs produced different traces (%d vs %d bytes):\n%s",
			len(full1), len(full2), firstDiff(full1, full2))
	}
	if !bytes.Equal(filtered, filtered2) {
		t.Fatal("filtered timelines differ between identical runs")
	}
	if err := res1.Reconcile(); err != nil {
		t.Fatal(err)
	}
	// The scenario must actually exercise the fleet paths it pins.
	if res1.Fleet.Preemptions == 0 {
		t.Error("golden scenario recorded no preemption")
	}
	if res1.Fleet.RecoveryEpisodes < 2 {
		t.Errorf("golden scenario recorded %d recovery episodes, want >=2 (rack fan-out)",
			res1.Fleet.RecoveryEpisodes)
	}
	_ = res2

	golden := filepath.Join("testdata", "fleet.trace")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, filtered, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(filtered))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", golden, err)
	}
	if !bytes.Equal(filtered, want) {
		t.Errorf("fleet trace differs from golden %s (re-run with -update if the change is intentional):\n%s",
			golden, firstDiff(want, filtered))
	}
}

// firstDiff reports the first differing line between two timelines.
func firstDiff(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
