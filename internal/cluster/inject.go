package cluster

import (
	"jitckpt/internal/failure"
	"jitckpt/internal/gpu"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// injector applies a cluster-scoped failure.NodePlan to the shared
// hardware. Unlike the per-job failure.Injector (which resolves ranks
// through one job's placement), it targets node IDs directly: a single
// RackDown fans out to every tenant with ranks in that rack, and failures
// on unowned spares silently shrink the free pool.
type injector struct {
	a       *arbiter
	applied int
	skipped int
	// failedFIFO orders injection-failed nodes for repair: NodeRepaired
	// brings back the oldest still-down casualty first.
	failedFIFO []int
}

// start spawns the process that applies the plan on schedule.
func (in *injector) start(plan failure.NodePlan) {
	plan.Sort()
	injections := plan.Injections
	in.a.env.Go("cluster-injector", func(p *vclock.Proc) {
		for _, inj := range injections {
			if d := inj.At - p.Now(); d > 0 {
				p.Sleep(d)
			}
			in.apply(inj)
		}
	})
}

func (in *injector) apply(inj failure.NodeInjection) {
	a := in.a
	now := a.env.Now()
	ok := false
	switch inj.Kind {
	case failure.GPUHard:
		ok = in.failBoard(inj.Node)
	case failure.NodeDown:
		ok = in.failHost(inj.Node)
	case failure.RackDown:
		rack := inj.Node / a.rackSize
		lo, hi := rack*a.rackSize, (rack+1)*a.rackSize
		if hi > len(a.nodes) {
			hi = len(a.nodes)
		}
		for id := lo; id < hi; id++ {
			if in.failHost(id) {
				ok = true
			}
		}
	case failure.NodeRepaired:
		ok = in.repairOne()
	}
	if ok {
		in.applied++
		trace.Of(a.env).Instant(now, "fail", trace.LaneSim, "cluster-inject",
			"kind", inj.Kind, "node", inj.Node)
		a.env.Tracef("cluster: injected %v at node %d", inj.Kind, inj.Node)
	} else {
		in.skipped++
		trace.Of(a.env).Instant(now, "fail", trace.LaneSim, "cluster-inject-skip",
			"kind", inj.Kind, "node", inj.Node)
		a.env.Tracef("cluster: skipped %v at node %d (target already lost)", inj.Kind, inj.Node)
	}
}

// failBoard hard-fails one GPU on the node (the first still-healthy one).
// Host RAM survives, so peer-sheltered entries on the node do too; an
// owning tenant discovers the dead device organically through its
// workers. An unowned node leaves the allocatable pool immediately.
func (in *injector) failBoard(id int) bool {
	a := in.a
	node := a.nodes[id]
	if node.Failed {
		return false
	}
	var dev *gpu.Device
	for _, d := range node.Devices {
		if d.Health() == gpu.Healthy {
			dev = d
			break
		}
	}
	if dev == nil {
		return false // every board already dead
	}
	dev.InjectHard()
	in.failedFIFO = append(in.failedFIFO, id)
	if a.owner[id] == nil {
		now := a.env.Now()
		a.advance(now)
		a.pool.MarkFailed(id)
		a.transition(id, stDown)
		a.notePoint(now)
		a.bump()
	}
	return true
}

// failHost takes a whole node down: every GPU dies and the host's CPU
// memory — including peer-sheltered checkpoint entries — is gone. The
// owning tenant (if any) is told immediately so its shelter bookkeeping
// matches; its workers fail organically. The node stays accounted to its
// owner until the owner marks it failed or releases it.
func (in *injector) failHost(id int) bool {
	a := in.a
	node := a.nodes[id]
	if node.Failed {
		return false
	}
	node.Failed = true
	for _, d := range node.Devices {
		d.InjectHard()
	}
	in.failedFIFO = append(in.failedFIFO, id)
	if own := a.owner[id]; own != nil {
		if own.handle != nil {
			own.handle.NoteNodesLost(id)
		}
	} else {
		now := a.env.Now()
		a.advance(now)
		a.pool.MarkFailed(id)
		a.transition(id, stDown)
		a.notePoint(now)
		a.bump()
	}
	return true
}

// repairOne replaces the hardware of one down node: the oldest
// injection-failed node still broken, else any broken node in ID order.
// Nothing broken means the repair has no target and is skipped.
func (in *injector) repairOne() bool {
	a := in.a
	id := -1
	for _, cand := range in.failedFIFO {
		if nodeBad(a.nodes[cand]) {
			id = cand
			break
		}
	}
	if id < 0 {
		for _, n := range a.nodes {
			if nodeBad(n) {
				id = n.ID
				break
			}
		}
	}
	if id < 0 {
		return false
	}
	node := a.nodes[id]
	node.Failed = false
	for _, d := range node.Devices {
		if d.Health() != gpu.Healthy {
			d.Repair()
		}
	}
	a.markRepaired(id)
	return true
}
