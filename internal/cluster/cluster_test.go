package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"jitckpt/internal/core"
	"jitckpt/internal/failure"
	"jitckpt/internal/vclock"
)

// fleetJob builds one tenant with the fleet test workload.
func fleetJob(name string, pol core.Policy, pri, iters int) JobSpec {
	return JobSpec{
		Name:     name,
		Priority: pri,
		Config: core.JobConfig{
			WL: FleetWorkload(), Policy: pol, Iters: iters,
			CkptInterval: vclock.Second, HangTimeout: 2 * vclock.Second,
		},
	}
}

// checkTimeline asserts the utilization timeline is monotone in time and
// that every point partitions the cluster exactly.
func checkTimeline(t *testing.T, res *Result) {
	t.Helper()
	last := vclock.Time(-1)
	for i, pt := range res.Fleet.Timeline {
		if pt.At < last {
			t.Fatalf("timeline point %d at %v before previous %v", i, pt.At, last)
		}
		last = pt.At
		if pt.Used+pt.Idle+pt.Down != res.Fleet.Nodes {
			t.Fatalf("timeline point %d: used %d + idle %d + down %d != nodes %d",
				i, pt.Used, pt.Idle, pt.Down, res.Fleet.Nodes)
		}
	}
}

func TestFleetSmoke(t *testing.T) {
	res, err := Run(Config{
		Nodes: 6, PerNode: 2, Seed: 1, Horizon: 2 * vclock.Minute,
		Jobs: []JobSpec{
			fleetJob("a", core.PolicyPCDisk, 0, 10),
			fleetJob("b", core.PolicyUserJIT, 0, 10),
			fleetJob("c", core.PolicyElasticJIT, 0, 10),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fleet.JobsCompleted != 3 {
		for _, j := range res.Jobs {
			t.Logf("job %s: err=%v res=%+v", j.Name, j.Err, j.Res)
		}
		t.Fatalf("completed %d/3 jobs", res.Fleet.JobsCompleted)
	}
	if err := res.Reconcile(); err != nil {
		t.Fatal(err)
	}
	checkTimeline(t, res)
	if res.Fleet.Goodput <= 0 {
		t.Fatalf("goodput = %v, want > 0", res.Fleet.Goodput)
	}
	if res.Fleet.UsedNodeTime <= 0 || res.Fleet.IdleNodeTime <= 0 {
		t.Fatalf("used=%v idle=%v, want both positive", res.Fleet.UsedNodeTime, res.Fleet.IdleNodeTime)
	}
	if res.Fleet.DownNodeTime != 0 {
		t.Fatalf("down=%v on a failure-free run", res.Fleet.DownNodeTime)
	}
	for _, j := range res.Jobs {
		if j.NodeTime <= 0 {
			t.Fatalf("job %s leased no node-time", j.Name)
		}
	}
}

// TestRackDownFansOut is the shared-failure-domain scenario: one RackDown
// destroys a 6-node rack hosting three tenants at once. Every victim
// records its own recovery episode, capacity comes back through repairs
// in admission-priority order, and the cluster accounting still
// reconciles exactly.
func TestRackDownFansOut(t *testing.T) {
	plan := failure.NodePlan{Injections: []failure.NodeInjection{
		{At: vclock.Second, Node: 0, Kind: failure.RackDown},
	}}
	for i := 0; i < 6; i++ {
		plan.Injections = append(plan.Injections, failure.NodeInjection{
			At: 30*vclock.Second + vclock.Time(i)*vclock.Second, Node: i, Kind: failure.NodeRepaired,
		})
	}
	res, err := Run(Config{
		Nodes: 8, PerNode: 2, RackSize: 6, Seed: 7, Horizon: 10 * vclock.Minute,
		Jobs: []JobSpec{
			fleetJob("v0", core.PolicyPCDisk, 0, 40),
			fleetJob("v1", core.PolicyPCDisk, 0, 40),
			fleetJob("v2", core.PolicyPCDisk, 0, 40),
			fleetJob("bystander", core.PolicyPCDisk, 0, 40),
		},
		Failures: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	victims := 0
	for _, j := range res.Jobs[:3] {
		if j.Res == nil {
			t.Fatalf("job %s has no result (err=%v)", j.Name, j.Err)
		}
		if len(j.Res.RecoveryLatencies) >= 1 {
			victims++
		}
		if !j.Res.Completed {
			t.Errorf("victim %s did not complete: %+v", j.Name, j.Res.Accounting)
		}
	}
	if victims < 3 {
		t.Fatalf("only %d victims recorded recovery episodes, want 3 (one RackDown must fan out)", victims)
	}
	if by := res.Jobs[3].Res; by == nil || len(by.RecoveryLatencies) != 0 {
		t.Fatalf("bystander in the other rack was hit: %+v", by)
	}
	if err := res.Reconcile(); err != nil {
		t.Fatal(err)
	}
	checkTimeline(t, res)
	if res.Fleet.DownNodeTime == 0 {
		t.Fatal("rack loss produced no down node-time")
	}
	if res.Fleet.AppliedInjections != 7 { // 1 RackDown + 6 repairs
		t.Fatalf("applied %d injections, want 7 (skipped %d)",
			res.Fleet.AppliedInjections, res.Fleet.SkippedInjections)
	}
	if res.Fleet.RecoveryLatency.Count < 3 || res.Fleet.RecoveryLatency.Max <= 0 {
		t.Fatalf("latency distribution %+v, want >=3 episodes", res.Fleet.RecoveryLatency)
	}
}

// TestPreemptionYield pins the arbitration path: a high-priority tenant
// arriving into a full cluster preempts a low-priority elastic tenant,
// which yields and continues degraded on fewer nodes; both finish.
func TestPreemptionYield(t *testing.T) {
	lo := fleetJob("lo", core.PolicyElasticJIT, 0, 60)
	hi := fleetJob("hi", core.PolicyPCDisk, 5, 15)
	hi.StartAt = 500 * vclock.Millisecond
	res, err := Run(Config{
		Nodes: 3, PerNode: 2, Seed: 3, Horizon: 5 * vclock.Minute,
		Jobs: []JobSpec{lo, hi},
	})
	if err != nil {
		t.Fatal(err)
	}
	loRes, hiRes := res.Jobs[0].Res, res.Jobs[1].Res
	if loRes == nil || hiRes == nil {
		t.Fatalf("missing results: lo=%v hi=%v (errs %v / %v)", loRes, hiRes, res.Jobs[0].Err, res.Jobs[1].Err)
	}
	if res.Fleet.Preemptions == 0 || loRes.Yields == 0 {
		t.Fatalf("no preemption happened: fleet=%d loYields=%d", res.Fleet.Preemptions, loRes.Yields)
	}
	if !hiRes.Completed {
		t.Fatalf("high-priority tenant did not complete: %+v", hiRes.Accounting)
	}
	if !loRes.Completed {
		t.Fatalf("yielding tenant did not complete: %+v", loRes.Accounting)
	}
	if loRes.Accounting.DegradedIters == 0 {
		t.Fatal("yielding tenant never ran degraded — yield did not take the shrink path")
	}
	if err := res.Reconcile(); err != nil {
		t.Fatal(err)
	}
	checkTimeline(t, res)
}

// soakConfig builds a randomized-but-deterministic mixed fleet under a
// Poisson cluster failure plan with repairs.
func soakConfig(seed int64) Config {
	rng := rand.New(rand.NewSource(seed))
	plan := failure.PoissonNodePlan(rng, 10, 400, 2*vclock.Minute, nil).
		WithRepairs(rand.New(rand.NewSource(seed+100)), 20*vclock.Second, 2)
	return Config{
		Nodes: 10, PerNode: 2, Seed: seed, Horizon: 4 * vclock.Minute,
		Jobs: []JobSpec{
			fleetJob("e0", core.PolicyElasticJIT, 0, 25),
			fleetJob("e1", core.PolicyElasticJIT, 0, 25),
			fleetJob("u0", core.PolicyUserJIT, 1, 25),
			fleetJob("d0", core.PolicyPCDisk, 1, 25),
			fleetJob("d1", core.PolicyPCDisk, 2, 25),
		},
		Failures: plan,
	}
}

// TestFleetChaosSoak drives mixed-policy fleets through Poisson
// cluster-scoped failure storms across seeds: whatever happens —
// preemptions, shrinks, rack losses, repairs — the exact accounting
// identities and timeline invariants must hold, and the whole run must be
// deterministic (two runs of one seed agree on every fleet stat).
func TestFleetChaosSoak(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		cfg := soakConfig(seed)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Reconcile(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkTimeline(t, res)
		res2, err := Run(soakConfig(seed))
		if err != nil {
			t.Fatalf("seed %d rerun: %v", seed, err)
		}
		if !reflect.DeepEqual(res.Fleet, res2.Fleet) {
			t.Fatalf("seed %d: fleet stats diverged between identical runs:\n%+v\nvs\n%+v",
				seed, res.Fleet, res2.Fleet)
		}
		for i := range res.Jobs {
			a, b := res.Jobs[i], res2.Jobs[i]
			if a.NodeTime != b.NodeTime {
				t.Fatalf("seed %d job %s: node-time diverged %v vs %v", seed, a.Name, a.NodeTime, b.NodeTime)
			}
			if (a.Res == nil) != (b.Res == nil) {
				t.Fatalf("seed %d job %s: result presence diverged", seed, a.Name)
			}
			if a.Res != nil && (a.Res.WallTime != b.Res.WallTime ||
				a.Res.Incarnations != b.Res.Incarnations ||
				!reflect.DeepEqual(a.Res.RecoveryLatencies, b.Res.RecoveryLatencies)) {
				t.Fatalf("seed %d job %s: results diverged", seed, a.Name)
			}
		}
	}
}

func TestParseJobsSpec(t *testing.T) {
	policies := map[string]core.Policy{
		"pc_disk":     core.PolicyPCDisk,
		"jit+elastic": core.PolicyElasticJIT,
	}
	jobs, err := ParseJobsSpec("3xjit+elastic,1xpc_disk@2:30", policies, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("got %d jobs, want 4", len(jobs))
	}
	if jobs[0].Config.Policy != core.PolicyElasticJIT || jobs[0].Config.Iters != 20 || jobs[0].Priority != 0 {
		t.Fatalf("bad first group: %+v", jobs[0])
	}
	if jobs[3].Config.Policy != core.PolicyPCDisk || jobs[3].Config.Iters != 30 || jobs[3].Priority != 2 {
		t.Fatalf("bad second group: %+v", jobs[3])
	}
	for _, bad := range []string{"", "x", "0xpc_disk", "2xnope", "2xpc_disk:x", "2xpc_disk@x"} {
		if _, err := ParseJobsSpec(bad, policies, 20); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
