package experiments

import (
	"fmt"
	"math/rand"

	"jitckpt/internal/core"
	"jitckpt/internal/failure"
	"jitckpt/internal/metrics"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// ElasticOptions tune the elastic degraded-mode sweep (table 11).
type ElasticOptions struct {
	// Seeds drive the Poisson failure/repair draws; each cell aggregates
	// one run per seed.
	Seeds []int64
	// Iters is the useful-minibatch count per run.
	Iters int
	// MTBFs are the job-level mean-time-between-failure points swept
	// (short, to land several failures inside a seconds-long run).
	MTBFs []vclock.Time
	// Spares are the spare-node counts swept.
	Spares []int
	// MeanRepair is the mean hardware-replacement turnaround appended
	// after every node-destroying failure (failure.Plan.WithRepairs).
	MeanRepair vclock.Time
	// PlanHorizon bounds the failure plan (not the simulation).
	PlanHorizon vclock.Time
	// Recorder, when set, collects the structured event trace of every
	// sweep run (each under its own run ID).
	Recorder *trace.Recorder
	// Workers caps the number of concurrent runs in the sweep (0 or 1 =
	// serial). Rows, metrics and merged traces are byte-identical to a
	// serial sweep regardless of the worker count.
	Workers int
}

// DefaultElasticOptions returns the standard sweep configuration.
func DefaultElasticOptions() ElasticOptions {
	return ElasticOptions{
		Seeds:       []int64{3, 7, 11},
		Iters:       200,
		MTBFs:       []vclock.Time{2 * vclock.Second, 3 * vclock.Second, 12 * vclock.Second},
		Spares:      []int{0, 1},
		MeanRepair:  3 * vclock.Second,
		PlanHorizon: 10 * vclock.Second,
	}
}

// elasticMix weights the failure draw toward node-destroying kinds: the
// sweep exists to exhaust the spare pool, which network blips never do.
func elasticMix() map[failure.Kind]float64 {
	return map[failure.Kind]float64{
		failure.GPUHard:     0.35,
		failure.NodeDown:    0.45,
		failure.NetworkHang: 0.20,
	}
}

// ElasticRow is one (policy, MTBF, spares) cell aggregated over seeds.
type ElasticRow struct {
	Policy core.Policy
	MTBF   vclock.Time
	Spares int
	// Runs and Completed count the seeds and how many of them finished
	// all iterations (at any width); FullWidth counts completions whose
	// final incarnation ran the full topology.
	Runs      int
	Completed int
	FullWidth int
	// Shrinks and Expands total the elastic transitions across seeds.
	Shrinks int
	Expands int
	// DegradedIters totals iterations executed below full width.
	DegradedIters int
	// UsefulFrac and WaitFrac are mean useful-time and
	// waiting-for-capacity fractions of wall time.
	UsefulFrac float64
	WaitFrac   float64
}

// ElasticPolicies lists the sweep's comparison pair: fixed-width
// user-level JIT (which gives up when spares run out) against its
// elastic variant (which shrinks, trains degraded, and re-expands).
func ElasticPolicies() []core.Policy {
	return []core.Policy{core.PolicyUserJIT, core.PolicyElasticJIT}
}

// RunElasticSweep executes the MTBF × spare-count grid behind table 11.
// Per cell and seed, a Poisson failure plan (hardware-heavy mix) with
// exponentially delayed repairs is run under both the fixed-width and
// elastic user-level JIT policies.
func RunElasticSweep(opt ElasticOptions) ([]ElasticRow, error) {
	def := DefaultElasticOptions()
	if len(opt.Seeds) == 0 {
		opt.Seeds = def.Seeds
	}
	if opt.Iters <= 0 {
		opt.Iters = def.Iters
	}
	if len(opt.MTBFs) == 0 {
		opt.MTBFs = def.MTBFs
	}
	if len(opt.Spares) == 0 {
		opt.Spares = def.Spares
	}
	if opt.MeanRepair <= 0 {
		opt.MeanRepair = def.MeanRepair
	}
	if opt.PlanHorizon <= 0 {
		opt.PlanHorizon = def.PlanHorizon
	}
	wl := chaosWorkload()
	mix := elasticMix()

	type cell struct {
		mtbf   vclock.Time
		spares int
		policy core.Policy
		seed   int64
	}
	var cells []cell
	for _, mtbf := range opt.MTBFs {
		for _, spares := range opt.Spares {
			for _, policy := range ElasticPolicies() {
				for _, seed := range opt.Seeds {
					cells = append(cells, cell{mtbf, spares, policy, seed})
				}
			}
		}
	}
	type runResult struct {
		completed        bool
		shrinks, expands int
		degraded         int
		useful, wait     float64
	}
	runs := make([]runResult, len(cells))
	err := runGrid(len(cells), opt.Workers, opt.Recorder, func(i int, rec *trace.Recorder) error {
		c := cells[i]
		rng := rand.New(rand.NewSource(c.seed*211 + int64(c.mtbf/vclock.Millisecond)))
		// Job-level MTBF m over n GPUs means a per-GPU daily rate of
		// day/(m·n).
		fPerGPUDay := float64(vclock.Day) / (float64(c.mtbf) * float64(wl.GPUs()))
		plan := failure.PoissonPlan(rng, wl.Topo.World(), fPerGPUDay, opt.PlanHorizon, mix).
			WithRepairs(rng, opt.MeanRepair)
		// The sweep needs a recorder for the transition counts; a shared
		// one (serial -trace export) accumulates every run, so count this
		// run's transitions as deltas.
		if rec == nil {
			rec = trace.New()
		}
		pre := trace.NewQuery(rec)
		shrink0 := len(pre.Instants("elastic", "shrink"))
		expand0 := len(pre.Instants("elastic", "expand"))
		res, err := core.Run(core.JobConfig{
			WL: wl, Policy: c.policy, Iters: opt.Iters, Seed: 1,
			HangTimeout: 2 * vclock.Second, SpareNodes: c.spares,
			Failures: plan,
			Recorder: rec,
		})
		if err != nil {
			return fmt.Errorf("elastic sweep %v mtbf=%v spares=%d seed=%d: %w",
				c.policy, c.mtbf, c.spares, c.seed, err)
		}
		q := trace.NewQuery(rec)
		r := runResult{
			completed: res.Completed,
			shrinks:   len(q.Instants("elastic", "shrink")) - shrink0,
			expands:   len(q.Instants("elastic", "expand")) - expand0,
			degraded:  res.Accounting.DegradedIters,
		}
		if res.WallTime > 0 {
			r.useful = float64(res.Accounting.Useful) / float64(res.WallTime)
			r.wait = float64(res.Accounting.WaitingForCapacity) / float64(res.WallTime)
		}
		runs[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	var rows []ElasticRow
	for i := 0; i < len(cells); i += len(opt.Seeds) {
		c := cells[i]
		row := ElasticRow{Policy: c.policy, MTBF: c.mtbf, Spares: c.spares}
		var usefulSum, waitSum float64
		for _, r := range runs[i : i+len(opt.Seeds)] {
			row.Runs++
			if r.completed {
				row.Completed++
				// Full width iff the run never shrank or expanded back.
				if r.shrinks == 0 || r.expands > 0 {
					row.FullWidth++
				}
			}
			row.Shrinks += r.shrinks
			row.Expands += r.expands
			row.DegradedIters += r.degraded
			usefulSum += r.useful
			waitSum += r.wait
		}
		row.UsefulFrac = usefulSum / float64(row.Runs)
		row.WaitFrac = waitSum / float64(row.Runs)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderElasticSweep formats table 11.
func RenderElasticSweep(rows []ElasticRow) *metrics.Table {
	t := metrics.NewTable("Elastic degraded-mode recovery: completion and useful time by MTBF and spare count",
		"Policy", "MTBF", "Spares", "Completed", "Full-width", "Shrinks", "Expands",
		"Degraded iters", "Useful %", "Waiting %")
	for _, r := range rows {
		t.Row(r.Policy.String(), r.MTBF.String(), r.Spares,
			fmt.Sprintf("%d/%d", r.Completed, r.Runs),
			fmt.Sprintf("%d/%d", r.FullWidth, r.Runs),
			r.Shrinks, r.Expands, r.DegradedIters,
			fmt.Sprintf("%.1f", 100*r.UsefulFrac),
			fmt.Sprintf("%.1f", 100*r.WaitFrac))
	}
	return t
}
