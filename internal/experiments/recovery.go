package experiments

import (
	"fmt"
	"math/rand"

	"jitckpt/internal/core"
	"jitckpt/internal/failure"
	"jitckpt/internal/metrics"
	"jitckpt/internal/trace"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

// RecoverySize is one point of table 14's model-size axis.
type RecoverySize struct {
	Name string
	// ParamsB scales the checkpointed state (billions of parameters).
	ParamsB float64
	// Hidden scales the simulated model's layer width.
	Hidden int
}

// RecoveryFamiliesOptions tune the recovery-family sweep (table 14).
type RecoveryFamiliesOptions struct {
	// Seeds drive the Poisson failure draws; each cell aggregates one run
	// per seed.
	Seeds []int64
	// Iters is the useful-minibatch count per run.
	Iters int
	// MTBFs are the job-level mean-time-between-failure points swept.
	MTBFs []vclock.Time
	// Intervals are the checkpoint-interval points swept. Policies with
	// no periodic writer (user-level and transparent JIT, peer shelter)
	// ignore the axis; their rows demonstrate the invariance.
	Intervals []vclock.Time
	// Sizes is the model-size axis.
	Sizes []RecoverySize
	// MeanRepair is the mean hardware-replacement turnaround appended
	// after node-destroying failures.
	MeanRepair vclock.Time
	// PlanHorizon bounds the failure plan (not the simulation).
	PlanHorizon vclock.Time
	// Recorder, when set, collects the structured event trace of every
	// sweep run; Workers caps sweep concurrency (byte-identical to
	// serial at any setting).
	Recorder *trace.Recorder
	Workers  int
}

// DefaultRecoveryFamiliesOptions returns the standard table 14 grid.
func DefaultRecoveryFamiliesOptions() RecoveryFamiliesOptions {
	return RecoveryFamiliesOptions{
		Seeds: []int64{3, 7},
		Iters: 80,
		MTBFs: []vclock.Time{3 * vclock.Second, 12 * vclock.Second},
		Intervals: []vclock.Time{
			200 * vclock.Millisecond, // 4 minibatches
			600 * vclock.Millisecond, // 12 minibatches
		},
		Sizes: []RecoverySize{
			{"small", 0.004, 8},
			{"large", 0.016, 16},
		},
		MeanRepair:  3 * vclock.Second,
		PlanHorizon: 10 * vclock.Second,
	}
}

// RecoveryFamilyPolicies lists table 14's comparison set: the five
// existing recovery families — periodic disk, user-level JIT, transparent
// JIT, peer shelter, elastic JIT — against the two new ones, multi-step
// overlapped disk and checkpoint-free pipeline recovery.
func RecoveryFamilyPolicies() []core.Policy {
	return []core.Policy{
		core.PolicyPCDisk, core.PolicyUserJIT, core.PolicyTransparentJIT,
		core.PolicyPeerShelter, core.PolicyElasticJIT,
		core.PolicyMultiStepDisk, core.PolicyPipeFree,
	}
}

// recoveryWorkload returns the sweep's cluster for one model size: eight
// single-GPU nodes running a 2-way-data-parallel, 4-stage pipeline — the
// smallest geometry on which every family (including the pipeline-stage
// redundancy tier) is runnable.
func recoveryWorkload(sz RecoverySize) workload.Workload {
	return workload.Workload{
		Name: "recovery-" + sz.Name, GPU: "A100-80GB", ParamsB: sz.ParamsB,
		Nodes: 8, PerNode: 1,
		Topo: train.Topology{D: 2, P: 4, T: 1}, Framework: "recovery",
		Minibatch:  50 * vclock.Millisecond,
		CkptTarget: vclock.Seconds(0.5), RestoreTarget: vclock.Seconds(1),
		NCCLInitBase: 200 * vclock.Millisecond, NCCLInitPerRank: 5 * vclock.Millisecond,
		Teardown: 100 * vclock.Millisecond, CRIU: vclock.Second,
		Layers: 4, Hidden: sz.Hidden,
	}
}

// recoveryMix weights the failure draw toward hardware kinds: the sweep
// compares recovery families, which network blips barely exercise.
func recoveryMix() map[failure.Kind]float64 {
	return map[failure.Kind]float64{
		failure.GPUHard:     0.40,
		failure.NodeDown:    0.40,
		failure.NetworkHang: 0.20,
	}
}

// RecoveryRow is one (size, MTBF, interval, policy) cell of table 14,
// aggregated over seeds.
type RecoveryRow struct {
	Size     string
	MTBF     vclock.Time
	Interval vclock.Time
	Policy   core.Policy
	// Runs and Completed count the seeds and how many finished.
	Runs      int
	Completed int
	// WastedFrac is the mean non-useful fraction of wall time.
	WastedFrac float64
	// CkptReadBytes totals the modelled restore-path checkpoint reads
	// across seeds — zero for checkpoint-free recoveries.
	CkptReadBytes int64
	// Rebuilds and MultiStepCommits total the new families' activity.
	Rebuilds         int
	MultiStepCommits int
}

// RunRecoveryFamilies executes the MTBF × checkpoint-interval × model-size
// grid behind table 14: every recovery family runs the same seeded Poisson
// failure plans and reports its wasted-time fraction and restore-path
// byte traffic. Cells run independently, so the grid parallelizes with
// byte-identical output.
func RunRecoveryFamilies(opt RecoveryFamiliesOptions) ([]RecoveryRow, error) {
	def := DefaultRecoveryFamiliesOptions()
	if len(opt.Seeds) == 0 {
		opt.Seeds = def.Seeds
	}
	if opt.Iters <= 0 {
		opt.Iters = def.Iters
	}
	if len(opt.MTBFs) == 0 {
		opt.MTBFs = def.MTBFs
	}
	if len(opt.Intervals) == 0 {
		opt.Intervals = def.Intervals
	}
	if len(opt.Sizes) == 0 {
		opt.Sizes = def.Sizes
	}
	if opt.MeanRepair <= 0 {
		opt.MeanRepair = def.MeanRepair
	}
	if opt.PlanHorizon <= 0 {
		opt.PlanHorizon = def.PlanHorizon
	}
	mix := recoveryMix()

	type cell struct {
		size     RecoverySize
		mtbf     vclock.Time
		interval vclock.Time
		policy   core.Policy
		seed     int64
	}
	var cells []cell
	for _, sz := range opt.Sizes {
		for _, mtbf := range opt.MTBFs {
			for _, interval := range opt.Intervals {
				for _, policy := range RecoveryFamilyPolicies() {
					for _, seed := range opt.Seeds {
						cells = append(cells, cell{sz, mtbf, interval, policy, seed})
					}
				}
			}
		}
	}
	type runResult struct {
		completed bool
		wasted    float64
		readBytes int64
		rebuilds  int
		commits   int
	}
	runs := make([]runResult, len(cells))
	err := runGrid(len(cells), opt.Workers, opt.Recorder, func(i int, rec *trace.Recorder) error {
		c := cells[i]
		wl := recoveryWorkload(c.size)
		rng := rand.New(rand.NewSource(c.seed*439 + int64(c.mtbf/vclock.Millisecond)))
		fPerGPUDay := float64(vclock.Day) / (float64(c.mtbf) * float64(wl.GPUs()))
		plan := failure.PoissonPlan(rng, wl.Topo.World(), fPerGPUDay, opt.PlanHorizon, mix).
			WithRepairs(rng, opt.MeanRepair)
		res, err := core.Run(core.JobConfig{
			WL: wl, Policy: c.policy, Iters: opt.Iters, Seed: 1,
			HangTimeout: 2 * vclock.Second, SpareNodes: spareNodesFor(wl),
			CkptInterval: c.interval,
			Failures:     plan,
			Recorder:     rec,
		})
		if err != nil {
			return fmt.Errorf("recovery sweep %v %s mtbf=%v interval=%v seed=%d: %w",
				c.policy, c.size.Name, c.mtbf, c.interval, c.seed, err)
		}
		r := runResult{
			completed: res.Completed,
			readBytes: res.CkptReadBytes,
			rebuilds:  res.Pipe.Rebuilds,
			commits:   res.MultiStepCommits,
		}
		if res.WallTime > 0 {
			r.wasted = 1 - float64(res.Accounting.Useful)/float64(res.WallTime)
		}
		runs[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	var rows []RecoveryRow
	for i := 0; i < len(cells); i += len(opt.Seeds) {
		c := cells[i]
		row := RecoveryRow{Size: c.size.Name, MTBF: c.mtbf, Interval: c.interval, Policy: c.policy}
		var wastedSum float64
		for _, r := range runs[i : i+len(opt.Seeds)] {
			row.Runs++
			if r.completed {
				row.Completed++
			}
			wastedSum += r.wasted
			row.CkptReadBytes += r.readBytes
			row.Rebuilds += r.rebuilds
			row.MultiStepCommits += r.commits
		}
		row.WastedFrac = wastedSum / float64(row.Runs)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderRecoveryFamilies formats table 14.
func RenderRecoveryFamilies(rows []RecoveryRow) *metrics.Table {
	t := metrics.NewTable("Table 14: Recovery families under failure (wasted time and restore traffic by MTBF, interval, model size)",
		"Model", "MTBF", "Interval", "Policy", "Completed", "Wasted %", "Ckpt read MB", "Rebuilds", "MS commits")
	for _, r := range rows {
		t.Row(r.Size, r.MTBF.String(), r.Interval.String(), r.Policy.String(),
			fmt.Sprintf("%d/%d", r.Completed, r.Runs),
			fmt.Sprintf("%.1f", 100*r.WastedFrac),
			fmt.Sprintf("%.1f", float64(r.CkptReadBytes)/1e6),
			r.Rebuilds, r.MultiStepCommits)
	}
	return t
}
