package experiments

import (
	"fmt"

	"jitckpt/internal/analysis"
	"jitckpt/internal/core"
	"jitckpt/internal/failure"
	"jitckpt/internal/metrics"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

// Table5Row is one transparent transient-recovery measurement.
type Table5Row struct {
	Model     string
	GPU       string
	Recovery  vclock.Time
	Minibatch vclock.Time
	Overhead  float64 // seconds per minibatch
}

// Table5Models lists the paper's Table 5 workload variants, grouped as in
// the paper (8x V100 node first, then 4x A100 node).
func Table5Models() []string {
	return []string{
		"BERT-B-FT/V100x8", "GPT2-S/V100x8", "GPT2-S-3D", "PyramidNet/V100x8",
		"BERT-B-FT/A100x4", "GPT2-S/A100x4",
	}
}

// RunTable5 measures transparent recovery from a transient network fault:
// no GPU state is copied; communicators are re-created and the minibatch
// replayed.
func RunTable5(models []string, opt Options) ([]Table5Row, error) {
	rows := make([]Table5Row, len(models))
	err := runGrid(len(models), opt.Workers, opt.Recorder, func(i int, rec *trace.Recorder) error {
		name := models[i]
		mopt := opt
		mopt.Recorder = rec
		wl, err := workload.ByName(name)
		if err != nil {
			return err
		}
		base, err := steadyMinibatch(wl, core.PolicyNone, mopt)
		if err != nil {
			return err
		}
		res, err := core.Run(core.JobConfig{
			WL: wl, Policy: core.PolicyTransparentJIT, Iters: mopt.Iters, Seed: mopt.Seed,
			Recorder:     rec,
			IterFailures: []core.IterInjection{{Iter: mopt.Iters / 2, Frac: 0.4, Rank: failTarget(wl), Kind: failure.NetworkHang}},
		})
		if err != nil {
			return err
		}
		if !res.Completed || len(res.Reports) == 0 {
			return fmt.Errorf("experiments: %s transient run incomplete (reports=%d)", name, len(res.Reports))
		}
		over := (res.Minibatch - base).Sec()
		if over < 0 {
			over = 0
		}
		rows[i] = Table5Row{
			Model:     name,
			GPU:       wl.GPU,
			Recovery:  res.Reports[0].HealthyAvg,
			Minibatch: res.Minibatch,
			Overhead:  over,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable5 formats Table 5.
func RenderTable5(rows []Table5Row) *metrics.Table {
	t := metrics.NewTable("Table 5: Transparent transient-error recovery (s)",
		"Model", "GPU", "Recovery Time", "Minibatch", "Overhead")
	for _, r := range rows {
		t.Row(r.Model, r.GPU, r.Recovery,
			fmt.Sprintf("%.3f", r.Minibatch.Sec()),
			fmt.Sprintf("%.5f", r.Overhead))
	}
	return t
}

// Table6Row is one transparent hard-error recovery measurement.
type Table6Row struct {
	Model     string
	GPU       string
	Healthy   vclock.Time
	Failed    vclock.Time
	Minibatch vclock.Time
}

// Table6Models lists the paper's Table 6 workload variants.
func Table6Models() []string {
	return []string{
		"BERT-B-FT/V100x8", "GPT2-S/V100x8", "GPT2-S-3D", "PyramidNet/V100x8",
		"BERT-B-FT/A100x4", "GPT2-S/A100x4", "PyramidNet/A100x4",
	}
}

// RunTable6 measures transparent hard-error recovery: healthy ranks
// JIT-checkpoint their GPU state and CRIU-checkpoint, the job migrates,
// and state is restored from the checkpoint files.
func RunTable6(models []string, opt Options) ([]Table6Row, error) {
	rows := make([]Table6Row, len(models))
	err := runGrid(len(models), opt.Workers, opt.Recorder, func(i int, rec *trace.Recorder) error {
		name := models[i]
		wl, err := workload.ByName(name)
		if err != nil {
			return err
		}
		res, err := core.Run(core.JobConfig{
			WL: wl, Policy: core.PolicyTransparentJIT, Iters: opt.Iters, Seed: opt.Seed,
			Recorder:     rec,
			SpareNodes:   spareNodesFor(wl),
			IterFailures: []core.IterInjection{{Iter: opt.Iters / 2, Frac: 0.4, Rank: failTarget(wl), Kind: failure.GPUHard}},
		})
		if err != nil {
			return err
		}
		if !res.Completed || len(res.Reports) == 0 {
			return fmt.Errorf("experiments: %s hard run incomplete (reports=%d)", name, len(res.Reports))
		}
		rows[i] = Table6Row{
			Model:     name,
			GPU:       wl.GPU,
			Healthy:   res.Reports[0].HealthyAvg,
			Failed:    res.Reports[0].FailedAvg,
			Minibatch: res.Minibatch,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable6 formats Table 6.
func RenderTable6(rows []Table6Row) *metrics.Table {
	t := metrics.NewTable("Table 6: Transparent hard-error recovery (s)",
		"Model", "GPU", "Healthy GPU", "Failed GPU", "Minibatch")
	for _, r := range rows {
		t.Row(r.Model, r.GPU, r.Healthy, r.Failed, fmt.Sprintf("%.3f", r.Minibatch.Sec()))
	}
	return t
}

// Table7Breakdown is one model's transient-recovery step breakdown.
type Table7Breakdown struct {
	Model  string
	Phases []core.PhaseDur
}

// Table7Models lists the paper's Table 7 workloads (8x V100).
func Table7Models() []string {
	return []string{"BERT-B-FT/V100x8", "GPT2-S/V100x8", "GPT2-S-3D", "PyramidNet/V100x8"}
}

// Table7PhaseOrder fixes the row order of the rendered breakdown.
var Table7PhaseOrder = []string{"teardown", "reset-buffers", "recreate-handles", "comm-init", "replay"}

// Table7PhaseLabels maps internal phase names to the paper's row labels.
var Table7PhaseLabels = map[string]string{
	"teardown":         "Delete communicators and GPU handles",
	"reset-buffers":    "Reset GPU buffers",
	"recreate-handles": "Recreate GPU handles",
	"comm-init":        "Recreate NCCL communicators",
	"replay":           "Replay minibatch APIs",
}

// RunTable7 measures the per-step breakdown of transparent transient
// recovery on one healthy rank worker.
func RunTable7(models []string, opt Options) ([]Table7Breakdown, error) {
	out := make([]Table7Breakdown, len(models))
	err := runGrid(len(models), opt.Workers, opt.Recorder, func(i int, rec *trace.Recorder) error {
		name := models[i]
		wl, err := workload.ByName(name)
		if err != nil {
			return err
		}
		res, err := core.Run(core.JobConfig{
			WL: wl, Policy: core.PolicyTransparentJIT, Iters: opt.Iters, Seed: opt.Seed,
			Recorder:     rec,
			IterFailures: []core.IterInjection{{Iter: opt.Iters / 2, Frac: 0.4, Rank: failTarget(wl), Kind: failure.NetworkHang}},
		})
		if err != nil {
			return err
		}
		if !res.Completed || len(res.Reports) == 0 {
			return fmt.Errorf("experiments: %s breakdown run incomplete", name)
		}
		out[i] = Table7Breakdown{Model: name, Phases: res.Reports[0].Phases}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RenderTable7 formats the breakdown with steps as rows and models as
// columns, like the paper.
func RenderTable7(breakdowns []Table7Breakdown) *metrics.Table {
	headers := []string{"Step"}
	for _, b := range breakdowns {
		headers = append(headers, b.Model)
	}
	t := metrics.NewTable("Table 7: Transparent transient recovery step breakdown (s, one rank worker)", headers...)
	for _, phase := range Table7PhaseOrder {
		row := []interface{}{Table7PhaseLabels[phase]}
		for _, b := range breakdowns {
			var d vclock.Time
			for _, ph := range b.Phases {
				if ph.Name == phase {
					d += ph.Dur
				}
			}
			row = append(row, fmt.Sprintf("%.3f", d.Sec()))
		}
		t.Row(row...)
	}
	return t
}

// Table8Row is one model's scaling entry at one N.
type Table8Row struct {
	Model string
	analysis.Scaling
}

// Table8Ns are the GPU counts the paper's Table 8 evaluates.
var Table8Ns = []int{4, 1024, 8192}

// Table8Models lists the models with measured constants in Tables 4–5.
func Table8Models() []string {
	return []string{"BERT-L-PT", "BERT-B-FT", "GPT2-S", "GPT2-8B"}
}

// RunTable8 combines the §5 analytical model with measured constants:
// o and r from the user-level measurements (Table 4), m from Table 2's
// minibatch times, and o_jit from the measured steady-state overhead.
func RunTable8(t4 []Table4Row, t3 []Table3Row) []Table8Row {
	byName4 := map[string]Table4Row{}
	for _, r := range t4 {
		byName4[r.Model] = r
	}
	byName3 := map[string]Table3Row{}
	for _, r := range t3 {
		byName3[r.Model] = r
	}
	var out []Table8Row
	for _, name := range Table8Models() {
		wl, err := workload.ByName(name)
		if err != nil {
			continue
		}
		m4, ok := byName4[name]
		if !ok {
			continue
		}
		base := analysis.Params{
			O:    m4.Ckpt.Sec(),
			F:    analysis.PerDay(FailureRate),
			R:    m4.Restore.Sec(),
			M:    wl.Minibatch.Sec(),
			OJit: byName3[name].JITC,
		}
		for _, sc := range analysis.ScaleModel(base, Table8Ns) {
			out = append(out, Table8Row{Model: name, Scaling: sc})
		}
	}
	return out
}

// RenderTable8 formats the scaling comparison.
func RenderTable8(rows []Table8Row) *metrics.Table {
	t := metrics.NewTable("Table 8: Scaling of wasted GPU time (optimal-frequency periodic vs JIT)",
		"Model", "N", "c* (/hr)", "wf Periodic", "wf UserJIT", "wf TransparentJIT")
	for _, r := range rows {
		t.Row(r.Model, r.N,
			fmt.Sprintf("%.2f", r.CStarPerHour),
			fmt.Sprintf("%.2f%%", 100*r.WfPeriodic),
			fmt.Sprintf("%.2f%%", 100*r.WfUserJIT),
			fmt.Sprintf("%.2f%%", 100*r.WfTransparentJIT))
	}
	return t
}

// DollarCostTable reproduces the §5.1 cost estimates.
func DollarCostTable() *metrics.Table {
	t := metrics.NewTable("§5.1: Monthly dollar cost of failures under periodic checkpointing",
		"GPUs", "Errors/day", "Lost h/error", "$/GPU-h", "Cost/month")
	for _, c := range []struct {
		n      int
		perDay float64
		lost   float64
		price  float64
	}{
		{1000, 1, 0.25, 4},
		{10000, 10, 0.25, 4},
	} {
		t.Row(c.n, c.perDay, c.lost, c.price,
			fmt.Sprintf("$%.0f", analysis.DollarCost(c.n, c.perDay, c.lost, c.price)))
	}
	return t
}

// BertWorkedExample reproduces eqs. 9–10: the BERT-L-PT optimal frequency
// and wasted-work expansion.
func BertWorkedExample() *metrics.Table {
	t := metrics.NewTable("§6.5: BERT-L-PT worked example (eqs. 9-10)",
		"N", "c* (/hr)", "interval", "w*", "wf")
	for _, n := range []int{4, 64, 1024, 8192} {
		c, w := analysis.BertExample(n)
		interval := "inf"
		if c > 0 {
			interval = vclock.Seconds(3600 / c).String()
		}
		t.Row(n, fmt.Sprintf("%.2f", c), interval,
			fmt.Sprintf("%.2e", w),
			fmt.Sprintf("%.3f%%", 100*analysis.WastedFraction(w)))
	}
	return t
}
