package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"jitckpt/internal/trace"
)

// TestErasureSweepHeadline pins the sweep's argument: Reed-Solomon
// striping matches replication's survivable-domain count at a fraction
// of the byte overhead, and every scheme actually recovers from the
// worst loss it budgets for.
func TestErasureSweepHeadline(t *testing.T) {
	rows, err := RunErasureSweep(nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]ErasureRow, len(rows))
	for _, r := range rows {
		byName[r.Scheme] = r

		if !r.Recovered {
			t.Errorf("%s: did not recover from %d domain losses", r.Scheme, r.DomainsLost)
		}
		if r.RedoIters > 1 {
			t.Errorf("%s: redid %d minibatches, want <=1 (shelter is at most one iteration stale)",
				r.Scheme, r.RedoIters)
		}
		// Measured byte overhead must match the analytic factor.
		if want := r.Peer.Overhead(); r.Overhead < want*0.99 || r.Overhead > want*1.01 {
			t.Errorf("%s: measured overhead %.3fx, analytic %.3fx", r.Scheme, r.Overhead, want)
		}
		if r.Peer.Striped() {
			if r.Decodes == 0 {
				t.Errorf("%s: survived without decoding — the kill set missed the stripe", r.Scheme)
			}
		} else if r.Decodes != 0 {
			t.Errorf("%s: replication scheme reported %d decodes", r.Scheme, r.Decodes)
		}
	}

	// The headline pairings: equal survivability, cheaper bytes.
	for _, pair := range []struct{ rs, repl string }{
		{"RS(2,1)", "repl x2"},
		{"RS(4,2)", "repl x3"},
	} {
		rs, repl := byName[pair.rs], byName[pair.repl]
		if rs.Scheme == "" || repl.Scheme == "" {
			t.Fatalf("sweep missing scheme %s or %s", pair.rs, pair.repl)
		}
		if rs.Survivable != repl.Survivable {
			t.Errorf("%s survives %d domains, %s survives %d — pairing broken",
				pair.rs, rs.Survivable, pair.repl, repl.Survivable)
		}
		if rs.Overhead > 1.6 {
			t.Errorf("%s: overhead %.2fx exceeds the 1.6x bound", pair.rs, rs.Overhead)
		}
		if repl.Overhead < 2.0 {
			t.Errorf("%s: overhead %.2fx below replication's 2x floor?", pair.repl, repl.Overhead)
		}
	}
}

// TestErasureParallelMatchesSerial extends the sweep runner's
// equivalence guarantee to the erasure grid: rows and the merged event
// trace are byte-identical whether schemes run serially or on workers.
func TestErasureParallelMatchesSerial(t *testing.T) {
	run := func(workers int) ([]ErasureRow, []byte) {
		opt := DefaultOptions()
		opt.Workers = workers
		opt.Recorder = trace.New()
		rows, err := RunErasureSweep(nil, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rows, traceBytes(t, opt.Recorder)
	}
	serialRows, serialTrace := run(1)
	parallelRows, parallelTrace := run(4)
	if !reflect.DeepEqual(serialRows, parallelRows) {
		t.Errorf("erasure rows differ between serial and parallel runs:\nserial:   %+v\nparallel: %+v",
			serialRows, parallelRows)
	}
	if !bytes.Equal(serialTrace, parallelTrace) {
		t.Errorf("erasure traces differ: serial %d bytes, parallel %d bytes",
			len(serialTrace), len(parallelTrace))
	}
}
