package experiments

import (
	"fmt"

	"jitckpt/internal/trace"
	"jitckpt/internal/tracestream"
	"jitckpt/internal/vclock"
)

// ServeCheckReport compares one evaluation table generated post-hoc with
// the same table generated while a live tracestream sink observed every
// run through a retention-free recorder. Byte-identical output proves
// the streaming observability layer cannot perturb the tables the
// paper's evaluation rests on — the sweep-level counterpart of the
// per-run differential suites in core and cluster.
type ServeCheckReport struct {
	Table    string
	Plain    string // rendered table, post-hoc arm
	Streamed string // rendered table, live-streamed arm
	// What the live sink saw while the streamed arm ran.
	StreamEvents uint64
	StreamJobs   int
	StreamDone   int
}

// Identical reports byte-equality of the two arms' rendered tables.
func (r ServeCheckReport) Identical() bool { return r.Plain == r.Streamed }

func (r ServeCheckReport) String() string {
	verdict := "IDENTICAL"
	if !r.Identical() {
		verdict = "DIVERGED"
	}
	return fmt.Sprintf("%s: %s (stream saw %d events, %d jobs, %d done)",
		r.Table, verdict, r.StreamEvents, r.StreamJobs, r.StreamDone)
}

// serveCheck runs one table twice through runTable — first with a nil
// recorder (post-hoc), then with a retention-free recorder streaming
// into a live sink — and packages the comparison.
func serveCheck(table string, runTable func(rec *trace.Recorder) (string, error)) (ServeCheckReport, error) {
	plain, err := runTable(nil)
	if err != nil {
		return ServeCheckReport{}, fmt.Errorf("%s post-hoc arm: %w", table, err)
	}
	st := tracestream.New(tracestream.Options{})
	rec := trace.New()
	rec.SetRetain(false)
	rec.SetSink(st)
	streamed, err := runTable(rec)
	if err != nil {
		return ServeCheckReport{}, fmt.Errorf("%s streamed arm: %w", table, err)
	}
	m := st.Metrics()
	return ServeCheckReport{
		Table: table, Plain: plain, Streamed: streamed,
		StreamEvents: m.Events, StreamJobs: m.Jobs, StreamDone: m.JobsDone,
	}, nil
}

// fleetServeCheckOptions is the single table-12 cell the check streams:
// the realistic mixed fleet on the short-MTBF, no-spare corner — the
// cell with the most concurrent recovery activity per simulated second.
func fleetServeCheckOptions() FleetOptions {
	opt := DefaultFleetOptions()
	opt.Seeds = opt.Seeds[:1]
	opt.Jobs = 6
	opt.Iters = 40
	opt.HeadlineJobs = 0
	opt.Mixes = opt.Mixes[len(opt.Mixes)-1:] // mixed
	opt.MTBFs = []vclock.Time{10 * vclock.Second}
	opt.SpareFracs = opt.SpareFracs[:1]
	opt.Horizon = 12 * vclock.Second
	return opt
}

// FleetServeCheck differentially verifies streaming against one fleet
// sweep cell (table 12): rows rendered from the streamed arm must be
// byte-identical to the post-hoc arm's.
func FleetServeCheck() (ServeCheckReport, error) {
	return serveCheck("fleet sweep (table 12)", func(rec *trace.Recorder) (string, error) {
		opt := fleetServeCheckOptions()
		opt.Recorder = rec
		rows, err := RunFleetSweep(opt)
		if err != nil {
			return "", err
		}
		return RenderFleetSweep(rows).Render(), nil
	})
}

// ErasureServeCheck differentially verifies streaming against the
// erasure sweep (table 13), whose peer-shelter runs exercise the
// categories the fleet cell does not.
func ErasureServeCheck() (ServeCheckReport, error) {
	return serveCheck("erasure sweep (table 13)", func(rec *trace.Recorder) (string, error) {
		opt := DefaultOptions()
		opt.Recorder = rec
		rows, err := RunErasureSweep(nil, opt)
		if err != nil {
			return "", err
		}
		return RenderErasureSweep(rows).Render(), nil
	})
}
