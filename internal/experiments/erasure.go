package experiments

import (
	"fmt"

	"jitckpt/internal/core"
	"jitckpt/internal/failure"
	"jitckpt/internal/metrics"
	"jitckpt/internal/peerckpt"
	"jitckpt/internal/trace"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

// ErasureScheme is one shelter configuration of the erasure sweep: a
// replication factor or a Reed-Solomon (k,m) geometry.
type ErasureScheme struct {
	Name string
	Peer peerckpt.Params
}

// ErasureSchemes lists the sweep's shelter configurations in
// presentation order: replication first (the overhead ceiling the sweep
// argues against), then the striped geometries. The pairings matter:
// RS(2,1) survives the same two domain losses as 2× replication at
// 1.5× overhead, and RS(4,2) matches 3× replication's three survivable
// losses at the same 1.5×.
func ErasureSchemes() []ErasureScheme {
	return []ErasureScheme{
		{"repl x2", peerckpt.Params{Copies: 2}},
		{"repl x3", peerckpt.Params{Copies: 3}},
		{"RS(2,1)", peerckpt.Params{DataShards: 2, ParityShards: 1}},
		{"RS(4,1)", peerckpt.Params{DataShards: 4, ParityShards: 1}},
		{"RS(4,2)", peerckpt.Params{DataShards: 4, ParityShards: 2}},
	}
}

// erasureWorkload returns the sweep's cluster: eight single-GPU nodes
// (each its own failure domain via JobConfig.RackSize=1) running a
// 2-way-data-parallel, 4-stage pipeline. Eight domains is the smallest
// count that lets the widest geometry, RS(4,2), place all six fragments
// of a stripe on distinct non-replica nodes.
func erasureWorkload() workload.Workload {
	return workload.Workload{
		Name: "erasure-tiny", GPU: "A100-80GB", ParamsB: 0.004, Nodes: 8, PerNode: 1,
		Topo: train.Topology{D: 2, P: 4, T: 1}, Framework: "erasure",
		Minibatch:  50 * vclock.Millisecond,
		CkptTarget: vclock.Seconds(0.5), RestoreTarget: vclock.Seconds(1),
		NCCLInitBase: 200 * vclock.Millisecond, NCCLInitPerRank: 5 * vclock.Millisecond,
		Teardown: 100 * vclock.Millisecond, CRIU: vclock.Second,
		Layers: 4, Hidden: 8,
	}
}

// ErasureRow is one scheme of the overhead-vs-survivability table.
type ErasureRow struct {
	Scheme string
	Peer   peerckpt.Params
	// Overhead is the measured sheltered-byte cost per protected byte
	// from the failure-free run (Copies× for replication, (k+m)/k× for
	// striping — the analytic factor, recovered from accounting).
	Overhead float64
	// Survivable is the analytic per-stripe domain-loss budget,
	// counting the owner's own domain: c for replication, m+1 for
	// RS(k,m).
	Survivable int
	// DomainsLost is how many distinct nodes the catastrophe run downs:
	// both data-parallel owners of position 0 plus Survivable-1 of its
	// shelter hosts — the worst loss the scheme claims to survive.
	DomainsLost int
	// RedoIters is the minibatches re-executed after the catastrophe;
	// Recovered whether the job completed at all.
	RedoIters int
	Recovered bool
	// Encodes/Decodes/FragErasures are the codec counters of the
	// catastrophe run: striped schemes must decode (parity at work),
	// replication never does.
	Encodes      int
	Decodes      int
	FragErasures int
}

// erasureKill returns the catastrophe injections for one scheme: node
// failures that destroy both data-parallel owners of position 0 and the
// first survivable-1 ring successors of node 0 — which placement makes
// position 0's first shelter hosts. With every owner and m fragment
// hosts (or c-1 copy hosts) gone, recovery must reconstruct from
// exactly the redundancy the scheme budgets for.
func erasureKill(wl workload.Workload, peer peerckpt.Params, atIter int) (inj []core.IterInjection, domains int) {
	owners := append([]int{0}, wl.Topo.ReplicaRanks(0)...)
	isOwner := make(map[int]bool, len(owners))
	for _, r := range owners {
		isOwner[r] = true
	}
	victims := append([]int(nil), owners...)
	for r := 1; len(victims) < len(owners)+peer.SurvivableDomains()-1; r++ {
		if !isOwner[r] {
			victims = append(victims, r)
		}
	}
	for _, r := range victims {
		inj = append(inj, core.IterInjection{Iter: atIter, Frac: 0.5, Rank: r, Kind: failure.NodeDown})
	}
	return inj, len(victims)
}

// RunErasureSweep measures, per scheme, the shelter's byte overhead
// (failure-free) and the outcome of a catastrophe that levels as many
// failure domains as the scheme claims to survive. Schemes run
// independently, so the grid parallelizes with byte-identical output.
func RunErasureSweep(schemes []ErasureScheme, opt Options) ([]ErasureRow, error) {
	if len(schemes) == 0 {
		schemes = ErasureSchemes()
	}
	wl := erasureWorkload()
	rows := make([]ErasureRow, len(schemes))
	gerr := runGrid(len(schemes), opt.Workers, opt.Recorder, func(i int, rec *trace.Recorder) error {
		sc := schemes[i]
		peer := sc.Peer
		row := ErasureRow{
			Scheme:     sc.Name,
			Peer:       peer,
			Survivable: peer.SurvivableDomains(),
		}

		// Steady state, failure-free: the shelter's byte cost.
		res, err := core.Run(core.JobConfig{
			WL: wl, Policy: core.PolicyPeerShelter, Iters: opt.Iters, Seed: opt.Seed,
			Peer: &peer, RackSize: 1,
			Recorder: rec,
		})
		if err != nil {
			return err
		}
		if !res.Completed {
			return fmt.Errorf("experiments: erasure %s steady run incomplete", sc.Name)
		}
		if res.Peer.BytesProtected == 0 {
			return fmt.Errorf("experiments: erasure %s sheltered nothing", sc.Name)
		}
		row.Overhead = float64(res.Peer.BytesSheltered) / float64(res.Peer.BytesProtected)

		// Catastrophe: down both owners of position 0 plus survivable-1
		// of its shelter hosts in one stroke.
		inj, domains := erasureKill(wl, peer, opt.Iters/2)
		row.DomainsLost = domains
		res, err = core.Run(core.JobConfig{
			WL: wl, Policy: core.PolicyPeerShelter, Iters: opt.Iters, Seed: opt.Seed,
			Peer: &peer, RackSize: 1,
			Recorder:     rec,
			SpareNodes:   spareNodesFor(wl),
			IterFailures: inj,
		})
		if err != nil {
			return err
		}
		row.Recovered = res.Completed
		if res.Completed {
			row.RedoIters = res.ItersExecuted - opt.Iters
		}
		row.Encodes = res.Peer.Encodes
		row.Decodes = res.Peer.Decodes
		row.FragErasures = res.Peer.FragErasures
		rows[i] = row
		return nil
	})
	if gerr != nil {
		return nil, gerr
	}
	return rows, nil
}

// RenderErasureSweep formats the overhead-vs-survivability table.
func RenderErasureSweep(rows []ErasureRow) *metrics.Table {
	t := metrics.NewTable("Erasure-coded shelter: byte overhead vs. survivable failure-domain losses",
		"Scheme", "Geometry", "Overhead", "Survives", "Domains downed", "Redo minibatches", "Decodes", "Recovered")
	for _, r := range rows {
		geom := fmt.Sprintf("%d copies", r.Peer.Copies)
		if r.Peer.Striped() {
			geom = fmt.Sprintf("k=%d m=%d", r.Peer.DataShards, r.Peer.ParityShards)
		}
		rec := "yes"
		if !r.Recovered {
			rec = "NO"
		}
		t.Row(r.Scheme, geom,
			fmt.Sprintf("%.2fx", r.Overhead),
			r.Survivable, r.DomainsLost, r.RedoIters, r.Decodes, rec)
	}
	return t
}
