package experiments

import (
	"math/rand"
	"strings"
	"testing"

	"jitckpt/internal/core"
	"jitckpt/internal/failure"
)

// TestRunChaosInvariants runs the full chaos suite at default settings
// and pins its two invariants across every policy×seed cell: the job
// completes despite randomized store corruption plus mix-drawn faults,
// and the loss trajectory stays bit-identical to the failure-free run.
func TestRunChaosInvariants(t *testing.T) {
	opt := DefaultChaosOptions()
	if testing.Short() {
		opt.Seeds = opt.Seeds[:1]
	}
	rows, err := RunChaos(opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ChaosPolicies()) * len(opt.Seeds); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if !r.Completed {
			t.Errorf("%v seed %d did not complete (faults %v)", r.Policy, r.Seed, r.Kinds)
		}
		if !r.BitIdentical {
			t.Errorf("%v seed %d diverged (faults %v)", r.Policy, r.Seed, r.Kinds)
		}
		if len(r.Kinds) == 0 {
			t.Errorf("%v seed %d injected nothing", r.Policy, r.Seed)
		}
	}
	out := RenderChaos(rows).Render()
	for _, p := range ChaosPolicies() {
		if !strings.Contains(out, p.String()) {
			t.Errorf("render missing policy %v", p)
		}
	}
}

// TestRunChaosHonorsMix pins the -mix plumbing: a single-kind mix must
// produce only that kind in every drawn plan.
func TestRunChaosHonorsMix(t *testing.T) {
	rows, err := RunChaos(ChaosOptions{
		Seeds:    []int64{3, 7},
		Policies: []core.Policy{core.PolicyUserJIT},
		Mix:      map[failure.Kind]float64{failure.GPUSticky: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for _, k := range r.Kinds {
			if k != failure.GPUSticky {
				t.Errorf("mix violated: drew %v", k)
			}
		}
		if !r.Completed || !r.BitIdentical {
			t.Errorf("sticky-only chaos failed: %+v", r)
		}
	}
}

// TestDrawKindFollowsWeights sanity-checks the sampler against a skewed
// mix.
func TestDrawKindFollowsWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mix := map[failure.Kind]float64{failure.GPUHard: 0.9, failure.NetworkHang: 0.1}
	counts := map[failure.Kind]int{}
	for i := 0; i < 2000; i++ {
		counts[drawKind(rng, mix)]++
	}
	if counts[failure.GPUHard] < 1600 || counts[failure.NetworkHang] < 100 {
		t.Errorf("skewed draw off: %v", counts)
	}
}
