package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"jitckpt/internal/cluster"
	"jitckpt/internal/core"
	"jitckpt/internal/failure"
	"jitckpt/internal/metrics"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// FleetGroup is one slice of a fleet job mix: a policy name (fleet name
// set, see FleetPolicies), its weight in the mix, and the priority its
// tenants are admitted at.
type FleetGroup struct {
	Policy   string
	Weight   float64
	Priority int
}

// FleetMix is a named tenant composition for the fleet sweep.
type FleetMix struct {
	Name   string
	Groups []FleetGroup
}

// FleetPolicies is the policy name set fleet mixes draw from.
func FleetPolicies() map[string]core.Policy {
	return map[string]core.Policy{
		"pc_disk":     core.PolicyPCDisk,
		"userjit":     core.PolicyUserJIT,
		"jit+elastic": core.PolicyElasticJIT,
	}
}

// DefaultFleetMixes returns the sweep's job-mix axis: an all-periodic
// fleet (the provisioned-checkpoint baseline), an all-JIT fleet, and the
// realistic mixed fleet — mostly elastic JIT tenants, a periodic
// minority, and a small high-priority band whose recoveries preempt.
func DefaultFleetMixes() []FleetMix {
	return []FleetMix{
		{Name: "periodic", Groups: []FleetGroup{{Policy: "pc_disk", Weight: 1}}},
		{Name: "jit", Groups: []FleetGroup{{Policy: "userjit", Weight: 1}}},
		{Name: "mixed", Groups: []FleetGroup{
			{Policy: "jit+elastic", Weight: 0.5},
			{Policy: "pc_disk", Weight: 0.3},
			{Policy: "userjit", Weight: 0.15, Priority: 1},
			{Policy: "pc_disk", Weight: 0.05, Priority: 5},
		}},
	}
}

// FleetOptions tune the fleet-level sweep (table 12).
type FleetOptions struct {
	// Seeds drive the shared environment and the Poisson failure draws;
	// each cell aggregates one fleet run per seed.
	Seeds []int64
	// Jobs is the tenant count per sweep cell.
	Jobs int
	// HeadlineJobs sizes one extra cell — the mixed fleet at scale, run
	// once on the first MTBF and last spare fraction (0 = skip it).
	HeadlineJobs int
	// HeadlineIters is the per-tenant iteration count of the headline
	// cell, kept short so scale (tenant count) rather than per-tenant
	// work dominates its cost.
	HeadlineIters int
	// Iters is the per-tenant useful-minibatch count.
	Iters int
	// Mixes is the job-mix axis.
	Mixes []FleetMix
	// MTBFs is the per-node mean-time-between-failure axis.
	MTBFs []vclock.Time
	// SpareFracs is the spare-capacity axis: the cluster is sized at
	// aggregate demand × (1 + frac).
	SpareFracs []float64
	// MeanRepair is the mean hardware-replacement turnaround appended
	// after every node-destroying failure.
	MeanRepair vclock.Time
	// RackSize is the shared failure-domain width in nodes.
	RackSize int
	// Horizon bounds each fleet simulation.
	Horizon vclock.Time
	// Recorder, when set, collects the structured event trace of every
	// fleet run (each under its own run ID).
	Recorder *trace.Recorder
	// Workers caps concurrent fleet runs (0 or 1 = serial). Rows, metrics
	// and merged traces are byte-identical to a serial sweep regardless.
	Workers int
}

// DefaultFleetOptions returns the standard sweep configuration: tenants
// whose useful work spans half the horizon (so failures land on running
// jobs, not an idle cluster), node MTBFs short enough to fan several
// faults into every fleet, and a headline cell running the mixed fleet
// at 500 concurrent tenants.
func DefaultFleetOptions() FleetOptions {
	return FleetOptions{
		Seeds:         []int64{3, 7},
		Jobs:          12,
		HeadlineJobs:  500,
		HeadlineIters: 50,
		Iters:         400,
		Mixes:         DefaultFleetMixes(),
		MTBFs:         []vclock.Time{20 * vclock.Second, 90 * vclock.Second},
		SpareFracs:    []float64{0, 0.25},
		MeanRepair:    10 * vclock.Second,
		RackSize:      4,
		Horizon:       40 * vclock.Second,
	}
}

// FleetRow is one (mix, MTBF, spare fraction) cell aggregated over seeds.
type FleetRow struct {
	Mix       string
	MTBF      vclock.Time
	SpareFrac float64
	Jobs      int
	Nodes     int
	Runs      int
	// Completed totals finished tenants across seeds (out of Jobs × Runs).
	Completed int
	// Goodput is the mean goodput-weighted cluster utilization.
	Goodput float64
	// DownFrac and IdleFrac are mean node-time fractions.
	DownFrac float64
	IdleFrac float64
	// Preemptions and Episodes total arbiter preemptions and per-tenant
	// recovery episodes across seeds.
	Preemptions int
	Episodes    int
	// P95Latency is the worst per-seed 95th-percentile recovery latency.
	P95Latency vclock.Time
}

// fleetSpec renders a mix at a tenant count as a cluster jobs spec,
// rounding group counts to weights and giving any remainder to the first
// (largest-weight by convention) group.
func fleetSpec(mix FleetMix, jobs, iters int) string {
	counts := make([]int, len(mix.Groups))
	total := 0
	for i, g := range mix.Groups {
		counts[i] = int(math.Round(g.Weight * float64(jobs)))
		total += counts[i]
	}
	counts[0] += jobs - total
	var parts []string
	for i, g := range mix.Groups {
		if counts[i] <= 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%dx%s@%d:%d", counts[i], g.Policy, g.Priority, iters))
	}
	return strings.Join(parts, ",")
}

// RunFleetSweep executes the job-mix × MTBF × spare-fraction grid behind
// table 12. Every cell is one shared-cluster simulation per seed: all
// tenants lease nodes from one arbitrated pool, failures are
// cluster-scoped (a rack loss fans out to every tenant in the rack), and
// the per-cell metrics come from the cluster's exactly reconciled fleet
// accounting.
func RunFleetSweep(opt FleetOptions) ([]FleetRow, error) {
	def := DefaultFleetOptions()
	if len(opt.Seeds) == 0 {
		opt.Seeds = def.Seeds
	}
	if opt.Jobs <= 0 {
		opt.Jobs = def.Jobs
	}
	if opt.Iters <= 0 {
		opt.Iters = def.Iters
	}
	if len(opt.Mixes) == 0 {
		opt.Mixes = def.Mixes
	}
	if len(opt.MTBFs) == 0 {
		opt.MTBFs = def.MTBFs
	}
	if len(opt.SpareFracs) == 0 {
		opt.SpareFracs = def.SpareFracs
	}
	if opt.MeanRepair <= 0 {
		opt.MeanRepair = def.MeanRepair
	}
	if opt.RackSize <= 0 {
		opt.RackSize = def.RackSize
	}
	if opt.Horizon <= 0 {
		opt.Horizon = def.Horizon
	}
	policies := FleetPolicies()
	perJob := cluster.FleetWorkload().Nodes

	type cell struct {
		mix   FleetMix
		mtbf  vclock.Time
		frac  float64
		seed  int64
		jobs  int
		iters int
		agg   int // row index this cell aggregates into
		nodes int
	}
	var cells []cell
	var rows []FleetRow
	addCell := func(mix FleetMix, mtbf vclock.Time, frac float64, jobs, iters int, seeds []int64) {
		demand := jobs * perJob
		nodes := demand + int(math.Ceil(frac*float64(demand)))
		rows = append(rows, FleetRow{
			Mix: mix.Name, MTBF: mtbf, SpareFrac: frac, Jobs: jobs, Nodes: nodes,
		})
		for _, seed := range seeds {
			cells = append(cells, cell{mix, mtbf, frac, seed, jobs, iters, len(rows) - 1, nodes})
		}
	}
	for _, mix := range opt.Mixes {
		for _, mtbf := range opt.MTBFs {
			for _, frac := range opt.SpareFracs {
				addCell(mix, mtbf, frac, opt.Jobs, opt.Iters, opt.Seeds)
			}
		}
	}
	if opt.HeadlineJobs > 0 {
		iters := opt.HeadlineIters
		if iters <= 0 {
			iters = def.HeadlineIters
		}
		addCell(opt.Mixes[len(opt.Mixes)-1], opt.MTBFs[0],
			opt.SpareFracs[len(opt.SpareFracs)-1], opt.HeadlineJobs, iters, opt.Seeds[:1])
	}

	results := make([]*cluster.Result, len(cells))
	err := runGrid(len(cells), opt.Workers, opt.Recorder, func(i int, rec *trace.Recorder) error {
		c := cells[i]
		jobs, err := cluster.ParseJobsSpec(fleetSpec(c.mix, c.jobs, c.iters), policies, c.iters)
		if err != nil {
			return fmt.Errorf("fleet sweep %s: %w", c.mix.Name, err)
		}
		// Per-node MTBF m means a per-node daily rate of day/m.
		fPerNodePerDay := float64(vclock.Day) / float64(c.mtbf)
		rng := rand.New(rand.NewSource(c.seed*127 + int64(c.nodes)))
		plan := failure.PoissonNodePlan(rng, c.nodes, fPerNodePerDay, opt.Horizon, nil).
			WithRepairs(rand.New(rand.NewSource(c.seed*131+int64(c.nodes))), opt.MeanRepair, opt.RackSize)
		res, err := cluster.Run(cluster.Config{
			Nodes:    c.nodes,
			PerNode:  cluster.FleetWorkload().PerNode,
			RackSize: opt.RackSize,
			Seed:     c.seed,
			Horizon:  opt.Horizon,
			Jobs:     jobs,
			Failures: plan,
			Recorder: rec,
		})
		if err != nil {
			return fmt.Errorf("fleet sweep %s mtbf=%v frac=%.2f seed=%d: %w",
				c.mix.Name, c.mtbf, c.frac, c.seed, err)
		}
		if err := res.Reconcile(); err != nil {
			return fmt.Errorf("fleet sweep %s mtbf=%v frac=%.2f seed=%d: %w",
				c.mix.Name, c.mtbf, c.frac, c.seed, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	runsPerRow := make([]int, len(rows))
	for i, c := range cells {
		res := results[i]
		row := &rows[c.agg]
		f := res.Fleet
		runsPerRow[c.agg]++
		row.Runs++
		row.Completed += f.JobsCompleted
		row.Goodput += f.Goodput
		total := float64(f.Nodes) * float64(f.Wall)
		if total > 0 {
			row.DownFrac += float64(f.DownNodeTime) / total
			row.IdleFrac += float64(f.IdleNodeTime) / total
		}
		row.Preemptions += f.Preemptions
		row.Episodes += f.RecoveryEpisodes
		if f.RecoveryLatency.P95 > row.P95Latency {
			row.P95Latency = f.RecoveryLatency.P95
		}
	}
	for i := range rows {
		if n := float64(runsPerRow[i]); n > 0 {
			rows[i].Goodput /= n
			rows[i].DownFrac /= n
			rows[i].IdleFrac /= n
		}
	}
	return rows, nil
}

// RenderFleetSweep formats table 12.
func RenderFleetSweep(rows []FleetRow) *metrics.Table {
	t := metrics.NewTable("Fleet-level recovery: goodput and preemption under shared failure domains by job mix, node MTBF and spare fraction",
		"Mix", "Jobs", "Nodes", "MTBF", "Spare %", "Completed", "Goodput %",
		"Idle %", "Down %", "Preempt", "Episodes", "P95 rec")
	for _, r := range rows {
		t.Row(r.Mix, r.Jobs, r.Nodes, r.MTBF.String(),
			fmt.Sprintf("%.0f", 100*r.SpareFrac),
			fmt.Sprintf("%d/%d", r.Completed, r.Jobs*r.Runs),
			fmt.Sprintf("%.1f", 100*r.Goodput),
			fmt.Sprintf("%.1f", 100*r.IdleFrac),
			fmt.Sprintf("%.1f", 100*r.DownFrac),
			r.Preemptions, r.Episodes, r.P95Latency.String())
	}
	return t
}
