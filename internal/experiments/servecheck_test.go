package experiments

import "testing"

// TestFleetSweepServeCheck pins the sweep-level differential contract
// behind jitbench -serve-check: a table-12 cell rendered from a run
// observed live by the streaming sink is byte-identical to the post-hoc
// rendering, and the sink actually saw the cell's tenants finish.
func TestFleetSweepServeCheck(t *testing.T) {
	rep, err := FleetServeCheck()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Errorf("streaming perturbed the fleet sweep:\n--- post-hoc\n%s\n--- streamed\n%s",
			rep.Plain, rep.Streamed)
	}
	if rep.StreamEvents == 0 {
		t.Fatal("streamed arm ingested no events")
	}
	if want := fleetServeCheckOptions().Jobs; rep.StreamJobs != want {
		t.Errorf("stream saw %d jobs, cell admits %d tenants", rep.StreamJobs, want)
	}
	if rep.StreamDone != rep.StreamJobs {
		t.Errorf("stream saw %d/%d jobs finish", rep.StreamDone, rep.StreamJobs)
	}
}

// TestErasureSweepServeCheck extends the contract to table 13, whose
// peer-shelter runs stream categories the fleet cell never emits.
func TestErasureSweepServeCheck(t *testing.T) {
	rep, err := ErasureServeCheck()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Errorf("streaming perturbed the erasure sweep:\n--- post-hoc\n%s\n--- streamed\n%s",
			rep.Plain, rep.Streamed)
	}
	if rep.StreamEvents == 0 {
		t.Fatal("streamed arm ingested no events")
	}
	if rep.StreamDone == 0 || rep.StreamDone != rep.StreamJobs {
		t.Errorf("stream saw %d/%d jobs finish", rep.StreamDone, rep.StreamJobs)
	}
}
