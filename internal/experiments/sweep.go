package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"jitckpt/internal/trace"
)

// DefaultWorkers returns the sweep worker count used when callers ask for
// "parallel" without a specific number: one per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// runGrid executes n independent simulation runs, farming them across up
// to `workers` goroutines (≤1 means serial, in the caller's goroutine).
//
// Every run is an isolated simulation with its own vclock environment, so
// runs may execute in any order — but observable output must not depend on
// that order. Serial mode records straight into the shared recorder;
// parallel mode hands each run a private recorder and splices them into
// the shared one in index order afterwards (trace.Recorder.Merge), which
// renumbers sequence and run IDs so the merged log is byte-identical to a
// serial sweep's. Callers must likewise write per-run results into
// index-addressed slots, never append from inside job.
//
// The job receives the recorder to pass to core.Run: the shared one in
// serial mode (possibly nil), a private one in parallel mode (nil when
// shared is nil, so untraced sweeps stay untraced). On error, the runs
// before the lowest failing index are still merged, and that error is
// returned — the same one a serial sweep would have stopped at.
func runGrid(n, workers int, shared *trace.Recorder, job func(i int, rec *trace.Recorder) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i, shared); err != nil {
				return err
			}
		}
		return nil
	}

	recs := make([]*trace.Recorder, n)
	errs := make([]error, n)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				var rec *trace.Recorder
				if shared != nil {
					rec = trace.New()
					recs[i] = rec
				}
				errs[i] = job(i, rec)
			}
		}()
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			for j := 0; j < i; j++ {
				shared.Merge(recs[j])
			}
			return errs[i]
		}
	}
	if shared != nil {
		for _, rec := range recs {
			shared.Merge(rec)
		}
	}
	return nil
}
