package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"jitckpt/internal/trace"
)

// traceBytes renders a recorder's deterministic text timeline, the byte
// representation the equivalence tests compare.
func traceBytes(t *testing.T, rec *trace.Recorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteText(&buf, rec, trace.TextOptions{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosParallelMatchesSerial pins the parallel sweep runner's core
// contract: farming the policy×seed grid across workers changes nothing
// observable. Rows (results, metrics, fault plans) are deeply equal and
// the merged event trace is byte-identical to the serially recorded one,
// for every chaos policy.
func TestChaosParallelMatchesSerial(t *testing.T) {
	run := func(workers int) ([]ChaosRow, []byte) {
		opt := DefaultChaosOptions()
		opt.Seeds = []int64{3, 7}
		opt.Workers = workers
		opt.Recorder = trace.New()
		rows, err := RunChaos(opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rows, traceBytes(t, opt.Recorder)
	}
	serialRows, serialTrace := run(1)
	parallelRows, parallelTrace := run(4)
	if !reflect.DeepEqual(serialRows, parallelRows) {
		t.Errorf("chaos rows differ between serial and parallel runs:\nserial:   %+v\nparallel: %+v",
			serialRows, parallelRows)
	}
	if !bytes.Equal(serialTrace, parallelTrace) {
		t.Errorf("chaos traces differ: serial %d bytes, parallel %d bytes",
			len(serialTrace), len(parallelTrace))
	}
}

// TestElasticParallelMatchesSerial extends the equivalence to the elastic
// sweep, whose rows are aggregated across seeds and whose shrink/expand
// counters are trace-derived — the parallel path counts them against
// private recorders, the serial path against the shared one.
func TestElasticParallelMatchesSerial(t *testing.T) {
	run := func(workers int) ([]ElasticRow, []byte) {
		opt := DefaultElasticOptions()
		opt.Seeds = opt.Seeds[:2]
		opt.MTBFs = opt.MTBFs[:1]
		opt.Workers = workers
		opt.Recorder = trace.New()
		rows, err := RunElasticSweep(opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rows, traceBytes(t, opt.Recorder)
	}
	serialRows, serialTrace := run(1)
	parallelRows, parallelTrace := run(4)
	if !reflect.DeepEqual(serialRows, parallelRows) {
		t.Errorf("elastic rows differ between serial and parallel runs:\nserial:   %+v\nparallel: %+v",
			serialRows, parallelRows)
	}
	if !bytes.Equal(serialTrace, parallelTrace) {
		t.Errorf("elastic traces differ: serial %d bytes, parallel %d bytes",
			len(serialTrace), len(parallelTrace))
	}
}

// TestTableSweepParallelMatchesSerial covers the per-model table grids
// (steady-state measurement path, no fault injection).
func TestTableSweepParallelMatchesSerial(t *testing.T) {
	models := Table3Models()[:2]
	run := func(workers int) ([]Table3Row, []byte) {
		opt := DefaultOptions()
		opt.Workers = workers
		opt.Recorder = trace.New()
		rows, err := RunTable3(models, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rows, traceBytes(t, opt.Recorder)
	}
	serialRows, serialTrace := run(1)
	parallelRows, parallelTrace := run(4)
	if !reflect.DeepEqual(serialRows, parallelRows) {
		t.Errorf("table 3 rows differ between serial and parallel runs")
	}
	if !bytes.Equal(serialTrace, parallelTrace) {
		t.Errorf("table 3 traces differ: serial %d bytes, parallel %d bytes",
			len(serialTrace), len(parallelTrace))
	}
}

// TestParallelUntracedStaysUntraced pins that a parallel sweep with no
// recorder attaches no private recorders either: runs must not pay the
// tracing cost just because they run on a worker pool.
func TestParallelUntracedStaysUntraced(t *testing.T) {
	opt := DefaultChaosOptions()
	opt.Seeds = []int64{3}
	opt.Workers = 4
	rows, err := RunChaos(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if !row.Completed {
			t.Errorf("policy %v seed %d did not complete", row.Policy, row.Seed)
		}
	}
}
