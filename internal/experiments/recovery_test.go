package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"jitckpt/internal/core"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// quickRecoveryOptions trims the grid to one cell-row per policy so the
// equivalence and headline tests stay fast.
func quickRecoveryOptions() RecoveryFamiliesOptions {
	opt := DefaultRecoveryFamiliesOptions()
	opt.Seeds = opt.Seeds[:1]
	opt.MTBFs = opt.MTBFs[:1]
	opt.Intervals = opt.Intervals[:1]
	opt.Sizes = opt.Sizes[:1]
	opt.Iters = 40
	return opt
}

// TestRecoveryFamiliesHeadline pins table 14's argument: every family
// completes the sweep's failure plans, the checkpoint-free family reads
// zero restore bytes while actually rebuilding stages, and the multi-step
// family reads strictly fewer restore bytes than the periodic baseline.
func TestRecoveryFamiliesHeadline(t *testing.T) {
	rows, err := RunRecoveryFamilies(DefaultRecoveryFamiliesOptions())
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := make(map[core.Policy][]RecoveryRow)
	for _, r := range rows {
		byPolicy[r.Policy] = append(byPolicy[r.Policy], r)
	}
	if got, want := len(byPolicy), len(RecoveryFamilyPolicies()); got != want {
		t.Fatalf("sweep covered %d policies, want %d", got, want)
	}
	var pipeRebuilds, pipeReads, msReads, pcReads int64
	for _, r := range byPolicy[core.PolicyPipeFree] {
		pipeRebuilds += int64(r.Rebuilds)
		pipeReads += r.CkptReadBytes
	}
	for _, r := range byPolicy[core.PolicyMultiStepDisk] {
		if r.Completed != r.Runs {
			t.Errorf("multistep %s mtbf=%v interval=%v: %d/%d completed",
				r.Size, r.MTBF, r.Interval, r.Completed, r.Runs)
		}
		if r.MultiStepCommits == 0 {
			t.Errorf("multistep %s mtbf=%v interval=%v: no generations committed",
				r.Size, r.MTBF, r.Interval)
		}
		msReads += r.CkptReadBytes
	}
	for _, r := range byPolicy[core.PolicyPCDisk] {
		pcReads += r.CkptReadBytes
	}
	if pipeRebuilds == 0 {
		t.Error("pipe-free family never rebuilt a stage across the whole grid")
	}
	if pipeReads != 0 {
		t.Errorf("pipe-free family read %d checkpoint bytes, want 0", pipeReads)
	}
	if msReads == 0 || msReads >= pcReads {
		t.Errorf("multi-step restore traffic %d not below periodic baseline %d", msReads, pcReads)
	}
}

// TestRecoveryFamiliesParallelMatchesSerial extends the sweep runner's
// equivalence guarantee to the table 14 grid: rows and the merged event
// trace are byte-identical whether cells run serially or on workers.
func TestRecoveryFamiliesParallelMatchesSerial(t *testing.T) {
	run := func(workers int) ([]RecoveryRow, []byte) {
		opt := quickRecoveryOptions()
		opt.Workers = workers
		opt.Recorder = trace.New()
		rows, err := RunRecoveryFamilies(opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rows, traceBytes(t, opt.Recorder)
	}
	serialRows, serialTrace := run(1)
	parallelRows, parallelTrace := run(4)
	if !reflect.DeepEqual(serialRows, parallelRows) {
		t.Errorf("recovery rows differ between serial and parallel runs:\nserial:   %+v\nparallel: %+v",
			serialRows, parallelRows)
	}
	if !bytes.Equal(serialTrace, parallelTrace) {
		t.Errorf("recovery traces differ: serial %d bytes, parallel %d bytes",
			len(serialTrace), len(parallelTrace))
	}
}

// TestMultiStepOverheadGuard bounds the overlapped writer's steady-state
// cost: failure-free, at the same checkpoint interval, the multi-step
// family's wall time must stay strictly below the periodic disk
// baseline's (the slice writes hide half their serialization behind
// compute and push the disk write off the critical path entirely), and
// within 25% of the no-checkpoint run.
func TestMultiStepOverheadGuard(t *testing.T) {
	wl := recoveryWorkload(RecoverySize{"guard", 0.004, 8})
	const iters = 40
	interval := 4 * wl.Minibatch
	run := func(policy core.Policy) vclock.Time {
		res, err := core.Run(core.JobConfig{
			WL: wl, Policy: policy, Iters: iters, Seed: 1,
			CkptInterval: interval,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("%v failure-free run incomplete", policy)
		}
		return res.WallTime
	}
	none := run(core.PolicyNone)
	pc := run(core.PolicyPCDisk)
	ms := run(core.PolicyMultiStepDisk)
	if ms >= pc {
		t.Errorf("multi-step wall %v not below periodic %v at equal interval", ms, pc)
	}
	if limit := none + none/4; ms > limit {
		t.Errorf("multi-step wall %v exceeds 1.25x the no-checkpoint baseline %v", ms, none)
	}
}
