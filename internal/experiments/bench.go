package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"jitckpt/internal/cluster"
	"jitckpt/internal/core"
	"jitckpt/internal/trace"
	"jitckpt/internal/tracestream"
	"jitckpt/internal/vclock"
)

// BenchSchema identifies the BENCH_sim.json format version.
const BenchSchema = "jitckpt-bench/v1"

// BenchMetric is one measured quantity of a bench run. Better says which
// direction is an improvement ("higher" or "lower"), so the comparison
// tool can flag regressions without a per-metric table.
type BenchMetric struct {
	Name   string  `json:"name"`
	Value  float64 `json:"value"`
	Unit   string  `json:"unit"`
	Better string  `json:"better"`
}

// BenchReport is one point of the simulator's performance trajectory,
// serialized as BENCH_sim.json. The committed baseline at the repository
// root is the previous point; CI re-measures and compares against it.
type BenchReport struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Workers    int           `json:"workers"`
	Metrics    []BenchMetric `json:"metrics"`
}

// Metric returns the named metric and whether it exists.
func (r *BenchReport) Metric(name string) (BenchMetric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return BenchMetric{}, false
}

func (r *BenchReport) add(name string, value float64, unit, better string) {
	r.Metrics = append(r.Metrics, BenchMetric{Name: name, Value: value, Unit: unit, Better: better})
}

// RunBench measures the simulator's performance point: kernel microbench,
// steady-state training allocation rates, the table 10 chaos grid's
// throughput, and per-table wall times over the quick model subsets.
// workers is the sweep concurrency (≤1 = serial).
func RunBench(workers int) (*BenchReport, error) {
	r := &BenchReport{
		Schema:     BenchSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
	}

	// Kernel microbench: one full sleep cycle = timer push, heap pop,
	// clock advance, process dispatch.
	const sleepCycles = 200000
	env := vclock.NewEnv(1)
	env.Go("bench", func(p *vclock.Proc) {
		for i := 0; i < sleepCycles; i++ {
			p.Sleep(vclock.Microsecond)
		}
	})
	start := time.Now()
	if err := env.Run(); err != nil {
		return nil, fmt.Errorf("bench: vclock microbench: %w", err)
	}
	r.add("vclock_sleep_cycle_ns", float64(time.Since(start).Nanoseconds())/sleepCycles, "ns", "lower")

	// Steady-state training allocation rate: marginal allocs and bytes per
	// job minibatch (4 ranks), from the delta between a short and a long
	// failure-free run so setup costs cancel.
	wl := chaosWorkload()
	measure := func(iters int) (mallocs, bytes uint64, err error) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		res, err := core.Run(core.JobConfig{WL: wl, Policy: core.PolicyNone, Iters: iters, Seed: 1})
		if err != nil {
			return 0, 0, err
		}
		if !res.Completed {
			return 0, 0, fmt.Errorf("bench: steady run (%d iters) incomplete", iters)
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, nil
	}
	const shortIters, longIters = 40, 240
	m1, b1, err := measure(shortIters)
	if err != nil {
		return nil, err
	}
	m2, b2, err := measure(longIters)
	if err != nil {
		return nil, err
	}
	span := float64(longIters - shortIters)
	r.add("train_allocs_per_iter", (float64(m2)-float64(m1))/span, "allocs", "lower")
	r.add("train_bytes_per_iter", (float64(b2)-float64(b1))/span, "bytes", "lower")

	// The table 10 chaos grid: the headline throughput metrics.
	copt := DefaultChaosOptions()
	copt.Workers = workers
	start = time.Now()
	rows, err := RunChaos(copt)
	if err != nil {
		return nil, fmt.Errorf("bench: chaos grid: %w", err)
	}
	wall := time.Since(start).Seconds()
	var events uint64
	var simSec float64
	for _, row := range rows {
		events += row.Sim.Events()
		simSec += row.SimTime.Sec()
	}
	r.add("chaos_grid_wall_ms", wall*1000, "ms", "lower")
	r.add("chaos_grid_events_per_sec", float64(events)/wall, "events/s", "higher")
	r.add("chaos_grid_sim_per_wall", simSec/wall, "sim-s/wall-s", "higher")

	// Streaming observability overhead: the same chaos grid traced through
	// a retention-free recorder with the live tracestream sink detached vs
	// attached, interleaved min-of-N with alternating order (the same
	// estimator TestStreamingOverheadGuard enforces its ≤5% budget with).
	// Here the point is recorded warn-only — the trajectory file tracks
	// drift, the guard gates.
	traced := func(stream bool) (time.Duration, error) {
		topt := DefaultChaosOptions()
		topt.Workers = 1
		rec := trace.New()
		rec.SetRetain(false)
		if stream {
			rec.SetSink(tracestream.New(tracestream.Options{}))
		}
		topt.Recorder = rec
		begin := time.Now()
		_, err := RunChaos(topt)
		return time.Since(begin), err
	}
	var minOff, minOn time.Duration = 1 << 62, 1 << 62
	for i := 0; i < 3; i++ {
		order := []bool{false, true}
		if i%2 == 1 {
			order = []bool{true, false}
		}
		for _, stream := range order {
			runtime.GC()
			d, err := traced(stream)
			if err != nil {
				return nil, fmt.Errorf("bench: traced chaos grid: %w", err)
			}
			if stream && d < minOn {
				minOn = d
			}
			if !stream && d < minOff {
				minOff = d
			}
		}
	}
	r.add("chaos_grid_traced_wall_ms", minOff.Seconds()*1000, "ms", "lower")
	r.add("chaos_grid_streamed_wall_ms", minOn.Seconds()*1000, "ms", "lower")
	r.add("stream_overhead_pct", 100*(float64(minOn)-float64(minOff))/float64(minOff), "%", "lower")

	// Per-table wall times over the quick subsets jitbench -quick uses.
	opt := DefaultOptions()
	opt.Workers = workers
	tables := []struct {
		name string
		run  func() error
	}{
		{"table3", func() error { _, err := RunTable3(Table3Models()[:2], opt); return err }},
		{"table4", func() error { _, err := RunTable4(Table4Models()[:2], opt); return err }},
		{"table5", func() error { _, err := RunTable5(Table5Models()[:2], opt); return err }},
		{"table6", func() error { _, err := RunTable6(Table6Models()[:2], opt); return err }},
		{"table7", func() error { _, err := RunTable7(Table7Models()[:2], opt); return err }},
		{"table9", func() error { _, err := RunPeerComparison(PeerModels()[:1], nil, opt); return err }},
		{"table11", func() error {
			eopt := DefaultElasticOptions()
			eopt.Workers = workers
			eopt.Seeds = eopt.Seeds[:1]
			eopt.MTBFs = eopt.MTBFs[:1]
			_, err := RunElasticSweep(eopt)
			return err
		}},
		{"table12", func() error {
			fopt := DefaultFleetOptions()
			fopt.Workers = workers
			fopt.Seeds = fopt.Seeds[:1]
			fopt.MTBFs = fopt.MTBFs[:1]
			fopt.Mixes = fopt.Mixes[len(fopt.Mixes)-1:]
			fopt.HeadlineJobs = 0
			_, err := RunFleetSweep(fopt)
			return err
		}},
		{"table14", func() error {
			ropt := DefaultRecoveryFamiliesOptions()
			ropt.Workers = workers
			ropt.Seeds = ropt.Seeds[:1]
			ropt.MTBFs = ropt.MTBFs[:1]
			ropt.Intervals = ropt.Intervals[:1]
			ropt.Sizes = ropt.Sizes[:1]
			_, err := RunRecoveryFamilies(ropt)
			return err
		}},
	}
	for _, t := range tables {
		start = time.Now()
		if err := t.run(); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", t.name, err)
		}
		r.add(t.name+"_wall_ms", time.Since(start).Seconds()*1000, "ms", "lower")
	}

	// The table 13 erasure grid: its wall time tracks the Reed-Solomon
	// codec's real cost, and the aggregate encode/decode counters prove
	// the striped path (including parity reconstruction) is exercised.
	start = time.Now()
	erows, err := RunErasureSweep(nil, opt)
	if err != nil {
		return nil, fmt.Errorf("bench: erasure sweep: %w", err)
	}
	var encodes, decodes int
	for _, row := range erows {
		encodes += row.Encodes
		decodes += row.Decodes
	}
	r.add("table13_wall_ms", time.Since(start).Seconds()*1000, "ms", "lower")
	r.add("erasure_encodes", float64(encodes), "ops", "higher")
	r.add("erasure_decodes", float64(decodes), "ops", "higher")

	// Overlapped-writer overhead guard: the failure-free wall-time ratio
	// of the multi-step family to the periodic disk baseline at equal
	// checkpoint interval. Virtual time, so the point is deterministic;
	// TestMultiStepOverheadGuard enforces the <1 bound, the trajectory
	// file tracks drift.
	guardWL := recoveryWorkload(RecoverySize{"guard", 0.004, 8})
	guardRun := func(policy core.Policy) (vclock.Time, error) {
		res, err := core.Run(core.JobConfig{
			WL: guardWL, Policy: policy, Iters: 40, Seed: 1,
			CkptInterval: 4 * guardWL.Minibatch,
		})
		if err != nil {
			return 0, err
		}
		if !res.Completed {
			return 0, fmt.Errorf("bench: %v overhead-guard run incomplete", policy)
		}
		return res.WallTime, nil
	}
	pcWall, err := guardRun(core.PolicyPCDisk)
	if err != nil {
		return nil, err
	}
	msWall, err := guardRun(core.PolicyMultiStepDisk)
	if err != nil {
		return nil, err
	}
	r.add("multistep_overhead_ratio", float64(msWall)/float64(pcWall), "x", "lower")

	// Fleet point: 500 concurrent tenants leasing one arbitrated cluster
	// inside a single environment — the cluster subsystem's scale
	// throughput (one run, inherently serial; workers does not apply).
	// Measured last: the run's multi-gigabyte allocation churn perturbs
	// GC behavior for anything timed after it in the same process.
	fleetJobs, err := cluster.ParseJobsSpec("250xpc_disk,150xjit+elastic,100xuserjit",
		FleetPolicies(), 25)
	if err != nil {
		return nil, fmt.Errorf("bench: fleet spec: %w", err)
	}
	start = time.Now()
	fres, err := cluster.Run(cluster.Config{
		Nodes: 1100, PerNode: 2, RackSize: 4, Seed: 1,
		Horizon: 4 * vclock.Minute, Jobs: fleetJobs,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: fleet run: %w", err)
	}
	wall = time.Since(start).Seconds()
	if err := fres.Reconcile(); err != nil {
		return nil, fmt.Errorf("bench: fleet run: %w", err)
	}
	if fres.Fleet.JobsCompleted != len(fleetJobs) {
		return nil, fmt.Errorf("bench: fleet run completed %d/%d jobs",
			fres.Fleet.JobsCompleted, len(fleetJobs))
	}
	r.add("fleet500_wall_ms", wall*1000, "ms", "lower")
	r.add("fleet500_jobs_per_sec", float64(len(fleetJobs))/wall, "jobs/s", "higher")
	r.add("fleet500_events_per_sec", float64(fres.Fleet.SimStats.Events())/wall, "events/s", "higher")
	return r, nil
}

// WriteBench serializes a report as indented JSON.
func WriteBench(w io.Writer, r *BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBenchFile loads a BENCH_sim.json report.
func ReadBenchFile(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if r.Schema != BenchSchema {
		return nil, fmt.Errorf("bench: %s: unknown schema %q (want %q)", path, r.Schema, BenchSchema)
	}
	return &r, nil
}

// CompareBench reports regressions of cur against base: metrics present in
// both whose value moved more than tol (e.g. 0.10 for 10%) in the worse
// direction. Wall-time metrics are inherently noisy; the caller decides
// whether a regression fails the build or just warns.
func CompareBench(base, cur *BenchReport, tol float64) []string {
	var warnings []string
	for _, b := range base.Metrics {
		c, ok := cur.Metric(b.Name)
		if !ok || b.Value == 0 {
			continue
		}
		change := c.Value/b.Value - 1
		regressed := (b.Better == "lower" && change > tol) ||
			(b.Better == "higher" && change < -tol)
		if regressed {
			warnings = append(warnings, fmt.Sprintf(
				"%s regressed %.1f%%: %.4g -> %.4g %s (%s is better)",
				b.Name, 100*change, b.Value, c.Value, b.Unit, b.Better))
		}
	}
	return warnings
}
