package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"jitckpt/internal/cluster"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
)

// quickFleetOptions returns a trimmed fleet sweep that still exercises
// two mixes, both spare fractions, and two seeds.
func quickFleetOptions() FleetOptions {
	opt := DefaultFleetOptions()
	opt.Seeds = []int64{3, 7}
	opt.Jobs = 6
	opt.Iters = 40
	opt.HeadlineJobs = 0
	opt.Mixes = opt.Mixes[1:] // jit + mixed
	opt.MTBFs = []vclock.Time{10 * vclock.Second}
	opt.Horizon = 12 * vclock.Second
	return opt
}

func TestFleetSweepRows(t *testing.T) {
	opt := quickFleetOptions()
	rows, err := RunFleetSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	want := len(opt.Mixes) * len(opt.MTBFs) * len(opt.SpareFracs)
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Runs != len(opt.Seeds) {
			t.Errorf("row %s frac=%.2f aggregated %d runs, want %d", r.Mix, r.SpareFrac, r.Runs, len(opt.Seeds))
		}
		if r.Nodes < r.Jobs*2 {
			t.Errorf("row %s sized %d nodes for %d two-node jobs", r.Mix, r.Nodes, r.Jobs)
		}
		if r.Goodput <= 0 {
			t.Errorf("row %s frac=%.2f has zero goodput", r.Mix, r.SpareFrac)
		}
	}
	rendered := RenderFleetSweep(rows).Render()
	if !strings.Contains(rendered, "mixed") || !strings.Contains(rendered, "Goodput %") {
		t.Errorf("rendered table missing expected content:\n%s", rendered)
	}
}

// TestFleetParallelMatchesSerial extends the sweep runner's equivalence
// contract to fleet cells: even though each cell is itself a concurrent
// multi-tenant simulation, farming cells across workers changes nothing —
// rows are deeply equal and the merged trace is byte-identical to the
// serially recorded one.
func TestFleetParallelMatchesSerial(t *testing.T) {
	run := func(workers int) ([]FleetRow, []byte) {
		opt := quickFleetOptions()
		opt.Workers = workers
		opt.Recorder = trace.New()
		rows, err := RunFleetSweep(opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rows, traceBytes(t, opt.Recorder)
	}
	serialRows, serialTrace := run(1)
	parallelRows, parallelTrace := run(4)
	if !reflect.DeepEqual(serialRows, parallelRows) {
		t.Errorf("fleet rows differ between serial and parallel runs:\nserial:   %+v\nparallel: %+v",
			serialRows, parallelRows)
	}
	if !bytes.Equal(serialTrace, parallelTrace) {
		t.Errorf("fleet traces differ: serial %d bytes, parallel %d bytes",
			len(serialTrace), len(parallelTrace))
	}
	if len(serialTrace) == 0 {
		t.Error("fleet sweep recorded no trace events")
	}
}

func TestFleetSpec(t *testing.T) {
	mix := FleetMix{Name: "m", Groups: []FleetGroup{
		{Policy: "jit+elastic", Weight: 0.5},
		{Policy: "pc_disk", Weight: 0.3},
		{Policy: "userjit", Weight: 0.2, Priority: 2},
	}}
	spec := fleetSpec(mix, 10, 30)
	if spec != "5xjit+elastic@0:30,3xpc_disk@0:30,2xuserjit@2:30" {
		t.Fatalf("unexpected spec %q", spec)
	}
	// Rounding remainders land in the first group so totals stay exact.
	jobs, err := cluster.ParseJobsSpec(fleetSpec(mix, 7, 10), FleetPolicies(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 7 {
		t.Fatalf("7-job mix expanded to %d jobs", len(jobs))
	}
}
