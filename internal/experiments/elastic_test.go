package experiments

import (
	"strings"
	"testing"
)

// TestRunElasticSweep runs the MTBF × spare-count grid (one seed in
// short mode) and pins its structural invariants: every cell has rows
// for both policies, the elastic policy is the only one that shrinks,
// and any expand is preceded by at least one shrink in the same cell.
func TestRunElasticSweep(t *testing.T) {
	opt := DefaultElasticOptions()
	if testing.Short() {
		opt.Seeds = opt.Seeds[:1]
		opt.MTBFs = opt.MTBFs[:1]
	}
	rows, err := RunElasticSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(opt.MTBFs) * len(opt.Spares) * len(ElasticPolicies()); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	sawShrink := false
	for _, r := range rows {
		if r.Runs != len(opt.Seeds) {
			t.Errorf("%v mtbf=%v spares=%d: runs = %d, want %d",
				r.Policy, r.MTBF, r.Spares, r.Runs, len(opt.Seeds))
		}
		if !r.Policy.Elastic() && (r.Shrinks > 0 || r.Expands > 0 || r.DegradedIters > 0) {
			t.Errorf("fixed-width %v mtbf=%v spares=%d recorded elastic transitions: %+v",
				r.Policy, r.MTBF, r.Spares, r)
		}
		if r.Expands > 0 && r.Shrinks == 0 {
			t.Errorf("%v mtbf=%v spares=%d expanded without shrinking", r.Policy, r.MTBF, r.Spares)
		}
		if r.Policy.Elastic() && r.Shrinks > 0 {
			sawShrink = true
		}
		if r.Completed > r.Runs || r.FullWidth > r.Completed {
			t.Errorf("inconsistent counts: %+v", r)
		}
	}
	if !sawShrink {
		t.Error("no elastic cell ever shrank — the sweep is not exercising degraded mode")
	}
	out := RenderElasticSweep(rows).Render()
	for _, p := range ElasticPolicies() {
		if !strings.Contains(out, p.String()) {
			t.Errorf("render missing policy %v", p)
		}
	}
	t.Logf("\n%s", out)
}
