package experiments

import (
	"math"
	"math/rand"
	"sort"
	"strings"

	"jitckpt/internal/checkpoint"
	"jitckpt/internal/core"
	"jitckpt/internal/failure"
	"jitckpt/internal/metrics"
	"jitckpt/internal/trace"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

// ChaosOptions tune the randomized chaos suite.
type ChaosOptions struct {
	// Seeds drive the per-run fault draws; one row per policy×seed.
	Seeds []int64
	// Policies to soak; nil selects ChaosPolicies().
	Policies []core.Policy
	// Iters is the useful-minibatch count per run.
	Iters int
	// Mix weights the fault-kind draw (see failure.ParseMix for the
	// jitsim/jitbench flag syntax); nil selects failure.DefaultMix.
	Mix map[failure.Kind]float64
	// WriteFaultP is the per-write fault probability applied to every
	// shared-store (and peer-shelter) write.
	WriteFaultP float64
	// Recorder, when set, collects the structured event trace of every
	// soak run (each under its own run ID).
	Recorder *trace.Recorder
	// Workers caps the number of concurrent runs in the policy×seed grid
	// (0 or 1 = serial). Every run is an independent simulation, so rows,
	// loss trajectories and merged traces are byte-identical to a serial
	// sweep regardless of the worker count.
	Workers int
}

// DefaultChaosOptions returns the standard chaos-suite configuration.
func DefaultChaosOptions() ChaosOptions {
	return ChaosOptions{
		Seeds:       []int64{3, 7, 11},
		Iters:       18,
		WriteFaultP: 0.12,
	}
}

// ChaosPolicies lists the policies the chaos suite soaks: the periodic
// baseline plus the three JIT/peer configurations whose recovery paths
// the chaos layer attacks.
func ChaosPolicies() []core.Policy {
	return []core.Policy{core.PolicyPCDisk, core.PolicyUserJIT, core.PolicyPeerShelter, core.PolicyJITWithPeer}
}

// ChaosWorkload returns the chaos suite's job; the root benchmarks reuse
// it as the standard steady-training measurement subject.
func ChaosWorkload() workload.Workload { return chaosWorkload() }

// chaosWorkload is a small fast data-parallel job (4 GPUs over 2 nodes)
// so a full policy×seed sweep stays cheap; the recovery machinery it
// exercises is the same one the catalogue workloads use.
func chaosWorkload() workload.Workload {
	return workload.Workload{
		Name: "chaos-tiny", GPU: "A100-80GB", ParamsB: 0.004, Nodes: 2, PerNode: 2,
		Topo: train.Topology{D: 4, P: 1, T: 1}, Framework: "chaos",
		Minibatch:  50 * vclock.Millisecond,
		CkptTarget: vclock.Seconds(0.5), RestoreTarget: vclock.Seconds(1),
		NCCLInitBase: 200 * vclock.Millisecond, NCCLInitPerRank: 5 * vclock.Millisecond,
		Teardown: 100 * vclock.Millisecond, CRIU: vclock.Second,
		Layers: 2, Hidden: 8,
	}
}

// ChaosRow is one policy×seed cell of the chaos suite.
type ChaosRow struct {
	Policy core.Policy
	Seed   int64
	// Kinds are the fault kinds injected, in firing order.
	Kinds []failure.Kind
	// Incarnations counts job (re)starts; Recoveries counts transparent
	// recovery episodes (0 for restart-based policies).
	Incarnations int
	Recoveries   int
	// RedoIters is re-executed minibatches (work lost to rollback).
	RedoIters int
	// Completed and BitIdentical are the suite's two invariants: the job
	// finishes, and its loss trajectory matches the failure-free run
	// bit for bit.
	Completed    bool
	BitIdentical bool
	// Sim and SimTime carry the run's kernel event counters and final
	// simulated time, the raw material for the bench harness's events/sec
	// and simulated-seconds-per-wall-second metrics.
	Sim     vclock.Stats
	SimTime vclock.Time
}

// drawKind samples a fault kind from the normalized mix. Kinds are
// visited in enum order so the draw is deterministic per seed.
func drawKind(rng *rand.Rand, mix map[failure.Kind]float64) failure.Kind {
	kinds := make([]failure.Kind, 0, len(mix))
	var total float64
	for k, w := range mix {
		kinds = append(kinds, k)
		total += w
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	x := rng.Float64() * total
	for _, k := range kinds {
		if x -= mix[k]; x < 0 {
			return k
		}
	}
	return kinds[len(kinds)-1]
}

// chaosInjections draws the run's fault plan: two mix-weighted faults at
// one-third and two-thirds of the run, capped at two node-destroying
// kinds (the spare pool is finite), never aimed at the loss-reporting
// reference rank, and — for whole-node kinds — never at its node.
func chaosInjections(rng *rand.Rand, wl workload.Workload, iters int, mix map[failure.Kind]float64) []core.IterInjection {
	var out []core.IterInjection
	hard := 0
	for _, at := range []int{iters / 3, 2 * iters / 3} {
		kind := drawKind(rng, mix)
		switch kind {
		case failure.GPUHard, failure.NodeDown, failure.RackDown:
			hard++
			if hard > 2 {
				kind = failure.GPUSticky
			}
		}
		rank := 1 + rng.Intn(wl.Topo.World()-1)
		if kind == failure.NodeDown || kind == failure.RackDown {
			// Last node: the reference rank's failure domain stays up.
			rank = wl.Topo.World() - 1 - rng.Intn(wl.PerNode)
		}
		out = append(out, core.IterInjection{
			Iter: at, Frac: 0.1 + 0.8*rng.Float64(), Rank: rank, Kind: kind,
		})
	}
	return out
}

// RunChaos executes the randomized chaos suite: per policy×seed, every
// store write passes through a seeded random fault hook (transient
// errors, torn writes, silent bit-flips) while mix-drawn faults land
// mid-run, and the result is checked bit for bit against the
// failure-free loss trajectory.
func RunChaos(opt ChaosOptions) ([]ChaosRow, error) {
	if opt.Iters <= 0 {
		opt.Iters = DefaultChaosOptions().Iters
	}
	if len(opt.Seeds) == 0 {
		opt.Seeds = DefaultChaosOptions().Seeds
	}
	if opt.WriteFaultP <= 0 {
		opt.WriteFaultP = DefaultChaosOptions().WriteFaultP
	}
	policies := opt.Policies
	if len(policies) == 0 {
		policies = ChaosPolicies()
	}
	mix := opt.Mix
	if len(mix) == 0 {
		mix = failure.DefaultMix()
	}
	wl := chaosWorkload()

	ref, err := core.Run(core.JobConfig{
		WL: wl, Policy: core.PolicyNone, Iters: opt.Iters, Seed: 1, CollectLoss: true,
		Recorder: opt.Recorder,
	})
	if err != nil {
		return nil, err
	}

	type cell struct {
		policy core.Policy
		seed   int64
	}
	var cells []cell
	for _, policy := range policies {
		for _, seed := range opt.Seeds {
			cells = append(cells, cell{policy, seed})
		}
	}
	rows := make([]ChaosRow, len(cells))
	err = runGrid(len(cells), opt.Workers, opt.Recorder, func(i int, rec *trace.Recorder) error {
		policy, seed := cells[i].policy, cells[i].seed
		rng := rand.New(rand.NewSource(seed * 131))
		injections := chaosInjections(rng, wl, opt.Iters, mix)
		cfg := core.JobConfig{
			WL: wl, Policy: policy, Iters: opt.Iters, Seed: 1, CollectLoss: true,
			Recorder:    rec,
			HangTimeout: 2 * vclock.Second, SpareNodes: 4,
			IterFailures: injections,
			Chaos: &core.ChaosConfig{
				DiskChaos:    checkpoint.RandomChaos(rand.New(rand.NewSource(seed*17)), opt.WriteFaultP),
				ShelterChaos: checkpoint.RandomChaos(rand.New(rand.NewSource(seed*29)), opt.WriteFaultP),
			},
		}
		if _, isPeriodic := policy.PeriodicKind(); isPeriodic {
			cfg.CkptInterval = 4 * wl.Minibatch
		}
		res, err := core.Run(cfg)
		if err != nil {
			return err
		}
		row := ChaosRow{
			Policy:       policy,
			Seed:         seed,
			Incarnations: res.Incarnations,
			Recoveries:   len(res.Reports),
			Completed:    res.Completed,
			Sim:          res.SimStats,
			SimTime:      res.WallTime,
		}
		for _, inj := range injections {
			row.Kinds = append(row.Kinds, inj.Kind)
		}
		if res.Completed {
			row.RedoIters = res.ItersExecuted - opt.Iters
			row.BitIdentical = lossEqual(ref.Loss, res.Loss, opt.Iters)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// lossEqual compares two loss traces bit for bit over [0, iters).
func lossEqual(a, b map[int]float32, iters int) bool {
	for it := 0; it < iters; it++ {
		av, aok := a[it]
		bv, bok := b[it]
		if !aok || !bok || math.Float32bits(av) != math.Float32bits(bv) {
			return false
		}
	}
	return true
}

// RenderChaos formats the chaos-suite results.
func RenderChaos(rows []ChaosRow) *metrics.Table {
	t := metrics.NewTable("Chaos suite: randomized faults + store corruption, bit-identical convergence",
		"Policy", "Seed", "Faults", "Incarnations", "Recoveries", "Redo", "Completed", "Bit-identical")
	for _, r := range rows {
		var kinds []string
		for _, k := range r.Kinds {
			kinds = append(kinds, k.String())
		}
		yes := func(b bool) string {
			if b {
				return "yes"
			}
			return "NO"
		}
		t.Row(r.Policy.String(), r.Seed, strings.Join(kinds, "+"),
			r.Incarnations, r.Recoveries, r.RedoIters, yes(r.Completed), yes(r.BitIdentical))
	}
	return t
}
