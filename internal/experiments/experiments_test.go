package experiments

import (
	"jitckpt/internal/core"
	"strings"
	"testing"
)

func TestStaticTables(t *testing.T) {
	if Table1().Rows() != 3 {
		t.Error("Table 1 should have 3 rows")
	}
	t2 := Table2()
	if t2.Rows() != 10 {
		t.Errorf("Table 2 rows = %d, want 10", t2.Rows())
	}
	if !strings.Contains(t2.Render(), "2D-4P-4T") {
		t.Error("Table 2 missing GPT2-18B parallelism")
	}
	if DollarCostTable().Rows() != 2 {
		t.Error("dollar cost table rows")
	}
	if BertWorkedExample().Rows() != 4 {
		t.Error("worked example rows")
	}
}

func TestTable3SmallModel(t *testing.T) {
	rows, err := RunTable3([]string{"BERT-B-FT"}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// The paper's shape: PC_disk >= PC_mem > CheckFreq > PC_1/day, and
	// JIT-C near zero (well under any periodic variant).
	if !(r.PCDisk >= r.PCMem && r.PCMem > r.CheckFreq && r.CheckFreq > r.PCDaily) {
		t.Errorf("ordering violated: %+v", r)
	}
	if r.JITC >= r.CheckFreq {
		t.Errorf("JIT-C %.5f should be far below CheckFreq %.5f", r.JITC, r.CheckFreq)
	}
	out := RenderTable3(rows).Render()
	if !strings.Contains(out, "BERT-B-FT") {
		t.Error("render missing model")
	}
}

func TestTable4SmallModel(t *testing.T) {
	rows, err := RunTable4([]string{"BERT-B-FT"}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Ckpt <= 0 || r.Restore <= 0 {
		t.Fatalf("missing measurements: %+v", r)
	}
	if r.Recovery != r.Ckpt+r.Restore {
		t.Error("recovery must be ckpt + restore")
	}
	if RenderTable4(rows).Rows() != 1 {
		t.Error("render rows")
	}
}

func TestTable5And7SmallModel(t *testing.T) {
	rows, err := RunTable5([]string{"BERT-B-FT/V100x8"}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Recovery <= 0 {
		t.Fatalf("no recovery time: %+v", rows[0])
	}
	bk, err := RunTable7([]string{"BERT-B-FT/V100x8"}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable7(bk).Render()
	if !strings.Contains(out, "Recreate NCCL communicators") {
		t.Error("breakdown missing comm-init row")
	}
}

func TestTable6SmallModel(t *testing.T) {
	rows, err := RunTable6([]string{"BERT-B-FT/A100x4"}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Healthy <= r.Failed {
		t.Errorf("healthy (%v) must exceed failed (%v): healthy ranks checkpoint GPU state", r.Healthy, r.Failed)
	}
}

func TestTable8Composition(t *testing.T) {
	t4 := []Table4Row{{Model: "BERT-L-PT", Ckpt: 5e9, Restore: 99e8}}
	t3 := []Table3Row{{Model: "BERT-L-PT", JITC: 0.0001}}
	rows := RunTable8(t4, t3)
	if len(rows) != len(Table8Ns) {
		t.Fatalf("rows = %d", len(rows))
	}
	last := rows[len(rows)-1]
	if last.N != 8192 || last.WfPeriodic <= last.WfUserJIT {
		t.Fatalf("JIT must win at 8192: %+v", last)
	}
}

func TestPeerComparison(t *testing.T) {
	rows, err := RunPeerComparison([]string{"GPT2-8B"}, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(PeerComparisonPolicies()) {
		t.Fatalf("%d rows, want %d", len(rows), len(PeerComparisonPolicies()))
	}
	byPolicy := map[core.Policy]PeerRow{}
	for _, r := range rows {
		if !r.Recovered {
			t.Fatalf("%s/%v did not recover from the catastrophic failure", r.Model, r.Policy)
		}
		byPolicy[r.Policy] = r
	}
	daily, peer := byPolicy[core.PolicyJITWithDaily], byPolicy[core.PolicyJITWithPeer]
	if peer.RedoIters > 1 {
		t.Fatalf("UserJIT+Peer redid %d minibatches, want <= 1", peer.RedoIters)
	}
	if daily.RedoIters <= peer.RedoIters {
		t.Fatalf("daily fallback redid %d <= peer's %d — rollback advantage vanished",
			daily.RedoIters, peer.RedoIters)
	}
	if byPolicy[core.PolicyPeerShelter].ReplShare <= 0 {
		t.Fatal("peer policies reported no replication traffic")
	}
	if rendered := RenderPeerComparison(rows).Render(); len(rendered) == 0 {
		t.Fatal("empty render")
	}
}

func TestParsePolicies(t *testing.T) {
	got, err := ParsePolicies(" peershelter , UserJIT+Peer ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != core.PolicyPeerShelter || got[1] != core.PolicyJITWithPeer {
		t.Fatalf("parsed %v", got)
	}
	if got, err := ParsePolicies("  "); err != nil || got != nil {
		t.Fatalf("empty spec: %v %v", got, err)
	}
	if _, err := ParsePolicies("PC_disk,nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
