package experiments

import (
	"fmt"
	"strings"

	"jitckpt/internal/analysis"
	"jitckpt/internal/core"
	"jitckpt/internal/failure"
	"jitckpt/internal/metrics"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

// Policy re-exports core.Policy so jitbench can pass parsed policy
// filters without importing internal/core directly.
type Policy = core.Policy

// PeerComparisonPolicies lists the policies the peer-shelter comparison
// covers, in presentation order: the classical periodic baseline, the
// paper's recommended JIT-plus-daily combination, and the two
// peer-shelter configurations that replace the daily-disk fallback.
func PeerComparisonPolicies() []core.Policy {
	return []core.Policy{core.PolicyPCDisk, core.PolicyJITWithDaily, core.PolicyPeerShelter, core.PolicyJITWithPeer}
}

// ParsePolicies resolves a comma-separated list of policy names (any
// spelling the shared registry accepts: presentation name, CLI key, or
// alias, case-insensitive). An empty spec selects defaults (returned as
// nil).
func ParsePolicies(spec string) ([]core.Policy, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []core.Policy
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		p, ok := core.ParsePolicy(tok)
		if !ok {
			names := make([]string, 0, len(core.Policies()))
			for _, pi := range core.Policies() {
				names = append(names, pi.Name)
			}
			return nil, fmt.Errorf("experiments: unknown policy %q (have: %s)", tok, strings.Join(names, ", "))
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// PeerModels lists the multi-node workloads the comparison runs on (the
// peer tier needs at least two failure domains).
func PeerModels() []string { return []string{"GPT2-8B", "T5-3B"} }

// PeerRow is one model×policy cell of the peer-shelter comparison.
type PeerRow struct {
	Model  string
	Policy core.Policy
	// SteadyOverhead is the steady-state checkpointing overhead fraction
	// (per unit useful time, failure-free).
	SteadyOverhead float64
	// RedoIters is how many minibatches were re-executed after a
	// catastrophic failure destroyed every replica of one position.
	RedoIters int
	// WastedGPUSec is the GPU time the catastrophe cost across all N
	// GPUs (redone minibatches × minibatch × N).
	WastedGPUSec float64
	// Recovered reports whether the job completed after the catastrophe.
	Recovered bool
	// ReplShare is peer-replication traffic relative to gradient
	// all-reduce traffic (0 for non-peer policies) — the tier's
	// interconnect bandwidth cost.
	ReplShare float64
}

// catastrophicKill returns injections that hard-fail every rank holding a
// replica of rank 0's position mid-run: after this, no healthy rank holds
// that state and no JIT checkpoint of it can be taken. GPU-hard failures
// (not whole-node) keep host RAM — and with it the peer shelter — alive,
// which is exactly the failure class the tier is built for.
func catastrophicKill(wl workload.Workload, atIter int) []core.IterInjection {
	ranks := append([]int{0}, wl.Topo.ReplicaRanks(0)...)
	out := make([]core.IterInjection, 0, len(ranks))
	for _, r := range ranks {
		out = append(out, core.IterInjection{Iter: atIter, Frac: 0.5, Rank: r, Kind: failure.GPUHard})
	}
	return out
}

// RunPeerComparison measures, for each model×policy, the steady-state
// overhead and the cost of one catastrophic (all-replica-loss) failure.
// Intervals are scaled to simulation length as elsewhere in the harness:
// PC_disk checkpoints every 4 minibatches; the "daily" fallback interval
// is longer than the whole run, so — like a real 24 h cadence between
// checkpoints — no periodic checkpoint exists when the catastrophe
// strikes. Peer-shelter rollback is one minibatch when the replication
// transfer fits inside a minibatch; when it does not (T5-3B), alternate
// offers are skipped and the rollback grows to two — the staleness side
// of the Checkmate trade.
func RunPeerComparison(models []string, policies []core.Policy, opt Options) ([]PeerRow, error) {
	if len(policies) == 0 {
		policies = PeerComparisonPolicies()
	}
	rows := make([]PeerRow, len(models)*len(policies))
	gerr := runGrid(len(models), opt.Workers, opt.Recorder, func(mi int, rec *trace.Recorder) error {
		name := models[mi]
		mopt := opt
		mopt.Recorder = rec
		wl, err := workload.ByName(name)
		if err != nil {
			return err
		}
		base, err := steadyMinibatch(wl, core.PolicyNone, mopt)
		if err != nil {
			return err
		}
		for pi, policy := range policies {
			row := PeerRow{Model: name, Policy: policy}

			// Steady-state overhead, measured failure-free.
			if _, isPeriodic := policy.PeriodicKind(); isPeriodic && !policy.UserLevelJIT() {
				// Per-checkpoint stall composed with the optimal frequency,
				// as in Table 3.
				res, err := core.Run(core.JobConfig{
					WL: wl, Policy: policy, Iters: opt.Iters, Seed: opt.Seed,
					Recorder:     rec,
					CkptInterval: 4 * wl.Minibatch,
				})
				if err != nil {
					return err
				}
				if !res.Completed || res.Accounting.Checkpoints == 0 {
					return fmt.Errorf("experiments: %s %v steady run incomplete", name, policy)
				}
				o := res.Accounting.CkptStall.Sec() / float64(res.Accounting.Checkpoints)
				p := analysis.Params{O: o, F: analysis.PerDay(FailureRate), N: wl.GPUs()}
				row.SteadyOverhead = o * analysis.OptimalFrequency(p)
			} else {
				res, err := core.Run(core.JobConfig{
					WL: wl, Policy: policy, Iters: opt.Iters, Seed: opt.Seed,
					Recorder: rec,
				})
				if err != nil {
					return err
				}
				if !res.Completed {
					return fmt.Errorf("experiments: %s %v steady run incomplete", name, policy)
				}
				delta := (res.Minibatch - base).Sec()
				if delta < 0 {
					delta = 0
				}
				row.SteadyOverhead = delta / base.Sec()
				if policy.UsesPeerShelter() && res.Peer.PiggybackBytes > 0 {
					// Replication never stalls the critical path: an offer
					// arriving while the previous transfer is in flight is
					// skipped, trading shelter staleness (the redo column)
					// for overhead. Its real cost is interconnect traffic.
					row.ReplShare = float64(res.Peer.BytesSheltered) / float64(res.Peer.PiggybackBytes)
				}
			}

			// One catastrophic failure mid-run.
			cfg := core.JobConfig{
				WL: wl, Policy: policy, Iters: opt.Iters, Seed: opt.Seed,
				Recorder:     rec,
				SpareNodes:   spareNodesFor(wl),
				IterFailures: catastrophicKill(wl, opt.Iters/2),
			}
			if policy == core.PolicyJITWithDaily {
				// Three run-lengths away: a scaled stand-in for a 1/day
				// cadence whose next checkpoint is still far off.
				cfg.CkptInterval = vclock.Time(3*opt.Iters) * wl.Minibatch
			} else if _, isPeriodic := policy.PeriodicKind(); isPeriodic && !policy.UserLevelJIT() {
				cfg.CkptInterval = 4 * wl.Minibatch
			}
			res, err := core.Run(cfg)
			if err != nil {
				return err
			}
			row.Recovered = res.Completed
			if res.Completed {
				row.RedoIters = res.ItersExecuted - opt.Iters
				row.WastedGPUSec = float64(row.RedoIters) * res.Minibatch.Sec() * float64(wl.GPUs())
			}
			rows[mi*len(policies)+pi] = row
		}
		return nil
	})
	if gerr != nil {
		return nil, gerr
	}
	return rows, nil
}

// RenderPeerComparison formats the comparison table.
func RenderPeerComparison(rows []PeerRow) *metrics.Table {
	t := metrics.NewTable("Peer-shelter comparison: steady-state overhead vs. catastrophic-failure cost",
		"Model", "Policy", "Steady overhead", "Redo minibatches", "Wasted GPU-min", "Repl/AllReduce", "Recovered")
	for _, r := range rows {
		repl := "-"
		if r.ReplShare > 0 {
			repl = fmt.Sprintf("%.2fx", r.ReplShare)
		}
		rec := "yes"
		if !r.Recovered {
			rec = "NO"
		}
		t.Row(r.Model, r.Policy.String(),
			fmt.Sprintf("%.3f%%", 100*r.SteadyOverhead),
			r.RedoIters,
			fmt.Sprintf("%.1f", r.WastedGPUSec/60),
			repl, rec)
	}
	return t
}
