// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) from the simulation, following the paper's own
// methodology: steady-state overheads are measured per checkpoint and
// composed with the optimal frequency of §5.2 (as Table 3's caption says),
// recovery times are measured from fault detection through replay
// completion excluding cross-rank waits, and the scaling analysis (Table
// 8) combines the §5 model with measured constants.
package experiments

import (
	"fmt"

	"jitckpt/internal/analysis"
	"jitckpt/internal/core"
	"jitckpt/internal/failure"
	"jitckpt/internal/metrics"
	"jitckpt/internal/trace"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

// FailureRate is the per-GPU failure rate used throughout the evaluation:
// the OPT-175B job's ≈2 failures/day over 992 GPUs (§5.1, §6.3).
const FailureRate = 2.0 / 992

// Options tune experiment runs.
type Options struct {
	// Iters is the minibatch count per measurement run.
	Iters int
	// Seed drives the simulations.
	Seed int64
	// Recorder, when set, collects the structured event trace of every
	// measurement run (each under its own run ID).
	Recorder *trace.Recorder
	// Workers caps the number of concurrently measured models in the
	// per-model tables (0 or 1 = serial). Each model's runs are
	// independent simulations, so tables and traces are byte-identical to
	// a serial run regardless of the worker count.
	Workers int
}

// DefaultOptions returns the standard measurement configuration.
func DefaultOptions() Options { return Options{Iters: 10, Seed: 1} }

// steadyMinibatch measures the steady-state minibatch time under a policy
// with no failures.
func steadyMinibatch(wl workload.Workload, policy core.Policy, opt Options) (vclock.Time, error) {
	res, err := core.Run(core.JobConfig{
		WL: wl, Policy: policy, Iters: opt.Iters, Seed: opt.Seed,
		Recorder: opt.Recorder,
	})
	if err != nil {
		return 0, err
	}
	if !res.Completed {
		return 0, fmt.Errorf("experiments: %s under %v did not complete", wl.Name, policy)
	}
	return res.Minibatch, nil
}

// Table1 renders the qualitative solution matrix.
func Table1() *metrics.Table {
	t := metrics.NewTable("Table 1: Summary of error recovery solutions",
		"#", "Solution", "Errors Handled", "User Code Change?")
	for _, s := range core.Solutions() {
		change := "No"
		if s.UserCodeChange {
			change = "Yes"
		}
		t.Row(s.Num, s.Name, s.ErrorsHandled, change)
	}
	return t
}

// Table2 renders the workload catalogue.
func Table2() *metrics.Table {
	t := metrics.NewTable("Table 2: Experimental workloads",
		"Model", "#Params(B)", "#GPUs", "Parallelism", "Framework", "GPU")
	for _, name := range workload.Table2Names() {
		wl, err := workload.ByName(name)
		if err != nil {
			continue
		}
		t.Row(wl.Name, wl.ParamsB, wl.GPUs(), wl.Topo.String(), wl.Framework, wl.GPU)
	}
	return t
}

// Table3Row is one model's steady-state checkpointing overhead fractions.
type Table3Row struct {
	Model     string
	PCDisk    float64
	PCMem     float64
	CheckFreq float64
	PCDaily   float64
	JITC      float64
}

// Table3Models lists the models the paper's Table 3 covers.
func Table3Models() []string {
	return []string{"GPT2-S", "GPT2-XL", "GPT2-8B", "GPT2-18B", "BERT-L-PT", "BERT-B-FT"}
}

// RunTable3 measures steady-state checkpoint overheads. Per the paper's
// methodology, the per-checkpoint stall is measured in a short run with a
// forced checkpoint, then composed with the optimal frequency c* for the
// model (or one/day for PC_1/day). The JIT-C column is the measured
// increase in minibatch time from interception and replay logging.
func RunTable3(models []string, opt Options) ([]Table3Row, error) {
	rows := make([]Table3Row, len(models))
	err := runGrid(len(models), opt.Workers, opt.Recorder, func(i int, rec *trace.Recorder) error {
		name := models[i]
		mopt := opt
		mopt.Recorder = rec
		wl, err := workload.ByName(name)
		if err != nil {
			return err
		}
		row := Table3Row{Model: name}

		base, err := steadyMinibatch(wl, core.PolicyNone, mopt)
		if err != nil {
			return err
		}

		// Per-checkpoint stall per policy, from a run with one forced
		// checkpoint.
		stall := func(policy core.Policy) (float64, error) {
			res, err := core.Run(core.JobConfig{
				WL: wl, Policy: policy, Iters: mopt.Iters, Seed: mopt.Seed,
				Recorder:     rec,
				CkptInterval: 4 * wl.Minibatch, // force a couple of checkpoints
			})
			if err != nil {
				return 0, err
			}
			if !res.Completed || res.Accounting.Checkpoints == 0 {
				return 0, fmt.Errorf("experiments: %s %v ckpt run incomplete", name, policy)
			}
			return res.Accounting.CkptStall.Sec() / float64(res.Accounting.Checkpoints), nil
		}
		oDisk, err := stall(core.PolicyPCDisk)
		if err != nil {
			return err
		}
		oMem, err := stall(core.PolicyPCMem)
		if err != nil {
			return err
		}
		oCF, err := stall(core.PolicyCheckFreq)
		if err != nil {
			return err
		}

		// Overhead fraction = per-checkpoint stall × checkpoint frequency.
		frac := func(o float64) float64 {
			p := analysis.Params{O: o, F: analysis.PerDay(FailureRate), N: wl.GPUs()}
			c := analysis.OptimalFrequency(p)
			return o * c
		}
		row.PCDisk = frac(oDisk)
		row.PCMem = frac(oMem)
		row.CheckFreq = frac(oCF)
		row.PCDaily = oMem / 86400 // one PC_mem-style checkpoint per day

		// JIT steady-state overhead: minibatch delta under interception.
		jit, err := steadyMinibatch(wl, core.PolicyUserJIT, mopt)
		if err != nil {
			return err
		}
		delta := (jit - base).Sec()
		if delta < 0 {
			delta = 0
		}
		row.JITC = delta / base.Sec()
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable3 formats Table 3 as percentages, like the paper.
func RenderTable3(rows []Table3Row) *metrics.Table {
	t := metrics.NewTable("Table 3: Checkpointing overhead percentages (at optimal frequency)",
		"Model", "PC_disk", "PC_mem", "CheckFreq", "PC_1/day", "JIT-C")
	for _, r := range rows {
		t.Row(r.Model,
			fmt.Sprintf("%.3f%%", 100*r.PCDisk),
			fmt.Sprintf("%.3f%%", 100*r.PCMem),
			fmt.Sprintf("%.3f%%", 100*r.CheckFreq),
			fmt.Sprintf("%.4f%%", 100*r.PCDaily),
			fmt.Sprintf("%.4f%%", 100*r.JITC))
	}
	return t
}

// Table4Row is one model's user-level JIT measurement.
type Table4Row struct {
	Model     string
	Ckpt      vclock.Time
	Restore   vclock.Time
	Recovery  vclock.Time
	Minibatch vclock.Time
	Overhead  float64 // seconds per minibatch added in steady state
}

// Table4Models lists the paper's Table 4 workloads.
func Table4Models() []string {
	return []string{"BERT-L-PT", "BERT-B-FT", "GPT2-S", "GPT2-XL", "GPT2-8B", "GPT2-18B", "T5-3B", "ViT"}
}

// RunTable4 measures user-level JIT checkpointing: a hard error is
// injected mid-training; the healthy replicas checkpoint just in time and
// the job restarts from that checkpoint.
func RunTable4(models []string, opt Options) ([]Table4Row, error) {
	rows := make([]Table4Row, len(models))
	err := runGrid(len(models), opt.Workers, opt.Recorder, func(i int, rec *trace.Recorder) error {
		name := models[i]
		mopt := opt
		mopt.Recorder = rec
		wl, err := workload.ByName(name)
		if err != nil {
			return err
		}
		base, err := steadyMinibatch(wl, core.PolicyNone, mopt)
		if err != nil {
			return err
		}
		res, err := core.Run(core.JobConfig{
			WL: wl, Policy: core.PolicyUserJIT, Iters: mopt.Iters, Seed: mopt.Seed,
			Recorder:     rec,
			SpareNodes:   spareNodesFor(wl),
			IterFailures: []core.IterInjection{{Iter: mopt.Iters / 2, Frac: 0.4, Rank: failTarget(wl), Kind: failure.GPUHard}},
		})
		if err != nil {
			return err
		}
		if !res.Completed || res.Incarnations != 2 {
			return fmt.Errorf("experiments: %s user-JIT run incomplete (inc=%d)", name, res.Incarnations)
		}
		over := (res.Minibatch - base).Sec()
		if over < 0 {
			over = 0
		}
		rows[i] = Table4Row{
			Model:     name,
			Ckpt:      res.JITCheckpointTime,
			Restore:   res.RestoreTime,
			Recovery:  res.JITCheckpointTime + res.RestoreTime,
			Minibatch: res.Minibatch,
			Overhead:  over,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable4 formats Table 4.
func RenderTable4(rows []Table4Row) *metrics.Table {
	t := metrics.NewTable("Table 4: User-level JIT checkpoint/restore/recovery times (s)",
		"Model", "Checkpoint", "Restore", "JIT Recovery", "Minibatch", "Overhead")
	for _, r := range rows {
		t.Row(r.Model, r.Ckpt, r.Restore, r.Recovery,
			fmt.Sprintf("%.3f", r.Minibatch.Sec()),
			fmt.Sprintf("%.5f", r.Overhead))
	}
	return t
}

// failTarget picks the rank to fail: a data-parallel replica that is not
// the reference (loss-reporting) rank.
func failTarget(wl workload.Workload) int {
	return wl.Topo.Rank(wl.Topo.D-1, 0, 0)
}

// spareNodesFor sizes the standby pool for migrations.
func spareNodesFor(wl workload.Workload) int {
	if wl.Nodes >= 4 {
		return wl.Nodes
	}
	return wl.Nodes + 1
}
