package peerckpt

import (
	"fmt"
	"testing"

	"jitckpt/internal/checkpoint"
	"jitckpt/internal/tensor"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

func testState(iter, rank int) *train.ModelState {
	rng := tensor.NewRNG(uint64(iter*100 + rank + 1))
	v := tensor.NewVector(16)
	rng.FillUniform(v, 1)
	return &train.ModelState{
		Iter: iter, Rank: rank,
		Tensors: map[string]tensor.Vector{"param.L0.w#0": v},
	}
}

// fakePeeker serves successive iterations' states for one rank.
type fakePeeker struct {
	rank int
	iter int
}

func (f *fakePeeker) PeekModelState() (*train.ModelState, error) {
	return testState(f.iter, f.rank), nil
}

func testParams() Params {
	return Params{LinkBandwidth: 1e9, Latency: vclock.Millisecond, Copies: 1, Retain: 2}
}

// mustShelter builds a shelter without availability checks, failing the
// test on a validation error.
func mustShelter(t *testing.T, env *vclock.Env, p Params) *Shelter {
	t.Helper()
	s, err := NewShelter(env, "job", p, Availability{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCommitValidityAndRetention(t *testing.T) {
	env := vclock.NewEnv(1)
	s := mustShelter(t, env, testParams())
	pk := &fakePeeker{rank: 3}
	rep := s.NewReplicator(3, nil, []int{1}, 1e6, 2e9)
	env.Go("drive", func(p *vclock.Proc) {
		for it := 1; it <= 5; it++ {
			pk.iter = it
			rep.Offer(pk)
			p.Sleep(vclock.Second) // plenty for 1MB at ~GB/s
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.Host(1)
	if st == nil {
		t.Fatal("host 1 missing")
	}
	// All five offers should have committed (1s gap >> transfer time).
	if got := s.Stats(); got.Commits != 5 || got.Skips != 0 {
		t.Fatalf("stats = %+v, want 5 commits / 0 skips", got)
	}
	// Retention keeps only the newest Retain=2 iterations for the rank.
	for it := 1; it <= 5; it++ {
		dir := checkpoint.RankDir("job", PolicyName, it, 3)
		has := checkpoint.HasComplete(st, dir)
		want := it >= 4
		if has != want {
			t.Errorf("iter %d sheltered=%v, want %v", it, has, want)
		}
	}
	// The newest entry must be readable and checksum-valid.
	env2done := false
	env.Go("read", func(p *vclock.Proc) {
		dir := checkpoint.RankDir("job", PolicyName, 5, 3)
		ms, err := checkpoint.ReadRank(p, st, dir)
		if err != nil {
			t.Errorf("ReadRank: %v", err)
			return
		}
		if ms.Iter != 5 || ms.Rank != 3 {
			t.Errorf("read iter %d rank %d", ms.Iter, ms.Rank)
		}
		env2done = true
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !env2done {
		t.Fatal("read proc did not run")
	}
}

func TestOfferIsAsyncAndBusySkips(t *testing.T) {
	env := vclock.NewEnv(1)
	s := mustShelter(t, env, testParams())
	pk := &fakePeeker{rank: 0, iter: 1}
	// 1 GB over a 1 GB/s link with 2 GB/s D2H staging: ~1.5 s in flight.
	rep := s.NewReplicator(0, nil, []int{2}, 1e9, 2e9)
	env.Go("drive", func(p *vclock.Proc) {
		t0 := p.Now()
		rep.Offer(pk)
		if p.Now() != t0 {
			t.Error("Offer charged time on the caller")
		}
		p.Sleep(100 * vclock.Millisecond)
		pk.iter = 2
		rep.Offer(pk) // previous transfer still in flight
		p.Sleep(10 * vclock.Second)
		pk.iter = 3
		rep.Offer(pk) // idle again
		p.Sleep(10 * vclock.Second)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	got := s.Stats()
	if got.Offers != 3 || got.Skips != 1 || got.Commits != 2 {
		t.Fatalf("stats = %+v, want 3 offers / 1 skip / 2 commits", got)
	}
	if rep.LastIter() != 3 {
		t.Fatalf("LastIter = %d, want 3", rep.LastIter())
	}
	// The skipped iteration 2 must not exist; 1 was pruned by retention
	// (Retain=2 keeps iters > 3-2); 3 must exist.
	st := s.Host(2)
	for it, want := range map[int]bool{1: false, 2: false, 3: true} {
		dir := checkpoint.RankDir("job", PolicyName, it, 0)
		if checkpoint.HasComplete(st, dir) != want {
			t.Errorf("iter %d sheltered=%v, want %v", it, !want, want)
		}
	}
}

func TestMarkNodeLostRemovesCoverage(t *testing.T) {
	env := vclock.NewEnv(1)
	s := mustShelter(t, env, testParams())
	topo := train.Topology{D: 2, P: 2, T: 1}
	env.Go("w", func(p *vclock.Proc) {
		// Shelter ranks 0..3 split across nodes 5 and 6.
		for rank := 0; rank < 4; rank++ {
			node := 5 + rank%2
			if err := s.commit(p, node, testState(7, rank), 1e6); err != nil {
				t.Errorf("commit rank %d: %v", rank, err)
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if cov := s.CoveredPositions(topo); len(cov) != topo.PositionCount() {
		t.Fatalf("covered %d positions, want %d: %v", len(cov), topo.PositionCount(), cov)
	}
	if !s.Any() {
		t.Fatal("Any = false with sheltered entries")
	}
	if got := len(s.Sources()); got != 2 {
		t.Fatalf("Sources = %d, want 2", got)
	}
	s.MarkNodeLost(5)
	cov := s.CoveredPositions(topo)
	for rank := 0; rank < 4; rank++ {
		key := topo.PositionKey(rank)
		want := rank%2 == 1 // node 6 survivors
		if cov[key] != want {
			t.Errorf("position %s covered=%v, want %v", key, cov[key], want)
		}
	}
	if got := len(s.Sources()); got != 1 {
		t.Fatalf("Sources after loss = %d, want 1", got)
	}
	if s.Host(5) != nil {
		t.Fatal("lost node still serves a host store")
	}
	// Commits routed at a lost node must fail, and the shelter must not
	// resurrect it.
	env.Go("w2", func(p *vclock.Proc) {
		if err := s.commit(p, 5, testState(8, 0), 1e6); err == nil {
			t.Error("commit to lost node succeeded")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFlushStoreNeverOwnNode(t *testing.T) {
	env := vclock.NewEnv(1)
	s := mustShelter(t, env, testParams())
	// Materialize hosts 0..3.
	for n := 0; n < 4; n++ {
		s.Host(n)
	}
	for own := 0; own < 4; own++ {
		for _, assigned := range [][]int{{(own + 1) % 4}, {own}, nil} {
			st := s.FlushStore(own, assigned)
			if st == nil {
				t.Fatalf("own=%d assigned=%v: no store", own, assigned)
			}
			if st == s.Host(own) {
				t.Fatalf("own=%d assigned=%v: flushed to own node", own, assigned)
			}
		}
	}
	// Prefer the assigned host when it survives.
	if st := s.FlushStore(0, []int{2}); st != s.Host(2) {
		t.Fatal("did not prefer surviving assigned host")
	}
	// Fall past a lost assigned host.
	s.MarkNodeLost(2)
	if st := s.FlushStore(0, []int{2}); st == nil || st == s.Host(0) {
		t.Fatal("no fallback past lost assigned host")
	}
	// All peers lost: only own node remains → nil.
	s.MarkNodeLost(1)
	s.MarkNodeLost(3)
	if st := s.FlushStore(0, []int{1, 2, 3}); st != nil {
		t.Fatal("FlushStore returned a store with no surviving peer")
	}
}

func TestCopiesFanOut(t *testing.T) {
	env := vclock.NewEnv(1)
	p := testParams()
	p.Copies = 2
	s := mustShelter(t, env, p)
	pk := &fakePeeker{rank: 1, iter: 4}
	rep := s.NewReplicator(1, nil, []int{7, 9}, 1e6, 2e9)
	env.Go("drive", func(p *vclock.Proc) {
		rep.Offer(pk)
		p.Sleep(vclock.Second)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{7, 9} {
		dir := checkpoint.RankDir("job", PolicyName, 4, 1)
		if !checkpoint.HasComplete(s.Host(n), dir) {
			t.Errorf("copy missing on node %d", n)
		}
	}
	if got := s.Stats(); got.Commits != 2 || got.BytesSheltered != 2e6 {
		t.Fatalf("stats = %+v, want 2 commits / 2e6 bytes", got)
	}
}

func TestPiggybackAccounting(t *testing.T) {
	env := vclock.NewEnv(1)
	s := mustShelter(t, env, testParams())
	for i := 0; i < 3; i++ {
		s.NotePiggyback(1 << 20)
	}
	got := s.Stats()
	if got.PiggybackWaves != 3 || got.PiggybackBytes != 3<<20 {
		t.Fatalf("piggyback stats = %+v", got)
	}
}

func TestParamsDefaults(t *testing.T) {
	s := mustShelter(t, vclock.NewEnv(1), Params{})
	if s.Params() != DefaultParams() {
		t.Fatalf("zero params resolved to %+v", s.Params())
	}
	if fmt.Sprintf("%v", s.Params().Retain) != "2" {
		t.Fatal("default Retain != 2")
	}
}
