package peerckpt

import (
	"fmt"
	"strings"

	"jitckpt/internal/checkpoint"
)

// EntryRef is the typed key of one sheltered rank entry: the (iter, rank)
// pair under a job's shelter namespace. All shelter path handling routes
// through it — replica objects (model.bin/META) and erasure fragments
// (fragNNN.bin/FMETANNN) live under the same entry directory, so pruning,
// coverage scans and restore enumeration never re-derive paths with ad-hoc
// byte slicing.
type EntryRef struct {
	Job  string
	Iter int
	Rank int
}

// Dir returns the entry's checkpoint directory.
func (e EntryRef) Dir() string { return checkpoint.RankDir(e.Job, PolicyName, e.Iter, e.Rank) }

// String renders the ref for traces and errors.
func (e EntryRef) String() string { return fmt.Sprintf("%s@iter%d/rank%d", e.Job, e.Iter, e.Rank) }

// shelterPrefix returns the store prefix of a job's shelter namespace.
func shelterPrefix(job string) string { return fmt.Sprintf("%s/ckpt/%s/", job, PolicyName) }

// parentDir returns the directory of an object path (everything before
// the final slash), or "" when the path has no directory.
func parentDir(path string) string {
	i := strings.LastIndex(path, "/")
	if i < 0 {
		return ""
	}
	return path[:i]
}

// parseEntryPath resolves a stored object path into its entry ref. It
// accepts any object under an entry directory — model.bin, META,
// fragNNN.bin, FMETANNN, and their .tmp staging names all resolve to the
// same ref.
func parseEntryPath(path string) (EntryRef, bool) {
	dir := parentDir(path)
	iter, rank, ok := checkpoint.ParseRankDir(dir)
	if !ok {
		return EntryRef{}, false
	}
	marker := "/ckpt/" + PolicyName + "/"
	i := strings.Index(dir, marker)
	if i < 0 {
		return EntryRef{}, false
	}
	return EntryRef{Job: dir[:i], Iter: iter, Rank: rank}, true
}

// entriesIn lists the distinct entry refs present in one host store for a
// job, in deterministic (path-sorted) order.
func entriesIn(st *checkpoint.Store, job string) []EntryRef {
	var out []EntryRef
	seen := make(map[EntryRef]bool)
	for _, path := range st.List(shelterPrefix(job)) {
		ref, ok := parseEntryPath(path)
		if !ok || seen[ref] {
			continue
		}
		seen[ref] = true
		out = append(out, ref)
	}
	return out
}
