package peerckpt

import (
	"strings"
	"testing"

	"jitckpt/internal/checkpoint"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

func TestEntryRefKeyHelper(t *testing.T) {
	ref := EntryRef{Job: "job", Iter: 5, Rank: 2}
	dir := ref.Dir()
	if dir != checkpoint.RankDir("job", PolicyName, 5, 2) {
		t.Fatalf("Dir = %q", dir)
	}
	// Every object kind under an entry dir — replica objects, erasure
	// fragments, and their staging names — must resolve to the same ref.
	for _, obj := range []string{
		dir + "/model.bin", dir + "/META", dir + "/model.bin.tmp",
		checkpoint.FragPath(dir, 0), checkpoint.FragMetaPath(dir, 7),
		checkpoint.FragPath(dir, 12) + ".tmp",
	} {
		got, ok := parseEntryPath(obj)
		if !ok || got != ref {
			t.Errorf("parseEntryPath(%q) = %+v ok=%v", obj, got, ok)
		}
	}
	for _, bad := range []string{"", "model.bin", "job/ckpt/other/iter00000005/rank0002/META", "job/oops"} {
		if _, ok := parseEntryPath(bad); ok {
			t.Errorf("parseEntryPath(%q) accepted", bad)
		}
	}
	if !strings.Contains(ref.String(), "iter5") {
		t.Errorf("String = %q", ref.String())
	}
}

func TestEntriesInDedupsAcrossObjectKinds(t *testing.T) {
	env := vclock.NewEnv(1)
	s := mustShelter(t, env, testParams())
	st := s.Host(1)
	env.Go("w", func(p *vclock.Proc) {
		dir := EntryRef{Job: "job", Iter: 3, Rank: 0}.Dir()
		st.Write(p, dir+"/model.bin", []byte("x"), 1)
		st.Write(p, dir+"/META", []byte("m"), 1)
		st.Write(p, checkpoint.FragPath(dir, 0), []byte("f"), 1)
		st.Write(p, checkpoint.FragMetaPath(dir, 0), []byte("fm"), 1)
		other := EntryRef{Job: "job", Iter: 4, Rank: 1}.Dir()
		st.Write(p, checkpoint.FragPath(other, 2), []byte("g"), 1)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	refs := entriesIn(st, "job")
	if len(refs) != 2 {
		t.Fatalf("entriesIn = %v, want 2 distinct entries", refs)
	}
	if refs[0] != (EntryRef{Job: "job", Iter: 3, Rank: 0}) || refs[1] != (EntryRef{Job: "job", Iter: 4, Rank: 1}) {
		t.Fatalf("entriesIn = %v", refs)
	}
}

func TestParamsValidation(t *testing.T) {
	env := vclock.NewEnv(1)
	cases := []struct {
		name  string
		p     Params
		avail Availability
		want  string // substring of the error, "" = accept
	}{
		{"k<1", Params{DataShards: 0, ParityShards: 2}, Availability{}, "at least one data shard"},
		{"m<0", Params{DataShards: 2, ParityShards: -1}, Availability{}, "cannot be negative"},
		{"too wide", Params{DataShards: 4, ParityShards: 2}, Availability{Nodes: 6}, "peer hosts"},
		{"few domains", Params{DataShards: 2, ParityShards: 2}, Availability{Nodes: 8, FailureDomains: 2}, "failure domains"},
		{"copies wide", Params{Copies: 4}, Availability{Nodes: 4}, "peer hosts"},
		{"ok stripe", Params{DataShards: 4, ParityShards: 2}, Availability{Nodes: 8, FailureDomains: 4}, ""},
		{"ok repl", Params{Copies: 2}, Availability{Nodes: 4, FailureDomains: 2}, ""},
		{"ok unknown avail", Params{DataShards: 8, ParityShards: 3}, Availability{}, ""},
	}
	for _, c := range cases {
		_, err := NewShelter(env, "job", c.p, c.avail)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func stripedParams() Params {
	p := testParams()
	p.DataShards = 2
	p.ParityShards = 1
	p.CodecBandwidth = 4e9
	return p
}

// driveStripe offers one state and lets the background stripe commit.
func driveStripe(t *testing.T, env *vclock.Env, s *Shelter, rank, iter int, hosts []int) {
	t.Helper()
	pk := &fakePeeker{rank: rank, iter: iter}
	rep := s.NewReplicator(rank, nil, hosts, 1e6, 2e9)
	env.Go("drive", func(p *vclock.Proc) {
		rep.Offer(pk)
		p.Sleep(vclock.Second)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStripedOfferSpreadsFragments(t *testing.T) {
	env := vclock.NewEnv(1)
	s := mustShelter(t, env, stripedParams())
	driveStripe(t, env, s, 0, 4, []int{1, 2, 3})
	dir := EntryRef{Job: "job", Iter: 4, Rank: 0}.Dir()
	for i, n := range []int{1, 2, 3} {
		if !checkpoint.HasFrag(s.Host(n), dir, i) {
			t.Errorf("fragment %d missing on node %d", i, n)
		}
	}
	st := s.Stats()
	if st.Encodes != 1 || st.Commits != 3 || st.EncodeTime <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Overhead: 3 fragments × ceil(1e6/2) bytes vs 1e6 protected = 1.5×.
	if st.BytesProtected != 1e6 || st.BytesSheltered != 3*500000 {
		t.Fatalf("bytes: sheltered %d protected %d", st.BytesSheltered, st.BytesProtected)
	}
	topo := train.Topology{D: 1, P: 1, T: 1}
	if cov := s.CoveredPositions(topo); !cov[topo.PositionKey(0)] {
		t.Fatal("striped entry not covered")
	}
	if !s.Any() {
		t.Fatal("Any = false with a full stripe")
	}
}

// loadVia runs the restore assembler over the shelter's candidates and
// loads rank 0's entry.
func loadVia(t *testing.T, env *vclock.Env, s *Shelter, topo train.Topology) *train.ModelState {
	t.Helper()
	var ms *train.ModelState
	env.Go("restore", func(p *vclock.Proc) {
		plan, err := checkpoint.AssembleRestore(p, "job", s.Sources(), s.RestoreCandidates(), topo, topo.World())
		if err != nil {
			t.Errorf("AssembleRestore: %v", err)
			return
		}
		got, err := plan.For[0].Load(p)
		if err != nil {
			t.Errorf("Load: %v", err)
			return
		}
		ms = got
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestStripeReconstructsAfterMaxLosses(t *testing.T) {
	env := vclock.NewEnv(1)
	s := mustShelter(t, env, stripedParams()) // RS(2,1): survives 1 fragment-host loss
	driveStripe(t, env, s, 0, 4, []int{1, 2, 3})
	s.MarkNodeLost(1) // data shard 0 gone → decode from shard 1 + parity
	topo := train.Topology{D: 1, P: 1, T: 1}
	if cov := s.CoveredPositions(topo); !cov[topo.PositionKey(0)] {
		t.Fatal("entry not reconstructable with k fragments surviving")
	}
	ms := loadVia(t, env, s, topo)
	if ms == nil {
		t.Fatal("no state loaded")
	}
	want := testState(4, 0)
	if ms.Iter != 4 || ms.Rank != 0 {
		t.Fatalf("loaded iter %d rank %d", ms.Iter, ms.Rank)
	}
	if !ms.Tensors["param.L0.w#0"].Equal(want.Tensors["param.L0.w#0"]) {
		t.Fatal("reconstructed tensor differs from the original")
	}
	st := s.Stats()
	if st.Decodes != 1 || st.DecodeTime <= 0 {
		t.Fatalf("decode stats = %+v", st)
	}
}

func TestStripeCorruptFragmentFeedsErasureList(t *testing.T) {
	env := vclock.NewEnv(1)
	s := mustShelter(t, env, stripedParams())
	driveStripe(t, env, s, 0, 4, []int{1, 2, 3})
	// Bit-flip data fragment 1 in place: the per-fragment checksum must
	// route it to the erasure list, and parity makes up the difference.
	dir := EntryRef{Job: "job", Iter: 4, Rank: 0}.Dir()
	if !s.Host(2).Corrupt(checkpoint.FragPath(dir, 1)) {
		t.Fatal("corrupt failed")
	}
	topo := train.Topology{D: 1, P: 1, T: 1}
	ms := loadVia(t, env, s, topo)
	if ms == nil || ms.Iter != 4 {
		t.Fatalf("loaded %+v", ms)
	}
	st := s.Stats()
	if st.Decodes != 1 {
		t.Fatalf("decode stats = %+v, want a parity decode", st)
	}
}

func TestStripeBeyondBudgetUncovered(t *testing.T) {
	env := vclock.NewEnv(1)
	s := mustShelter(t, env, stripedParams()) // RS(2,1)
	driveStripe(t, env, s, 0, 4, []int{1, 2, 3})
	s.MarkNodeLost(1)
	s.MarkNodeLost(3) // 2 losses > m=1: only 1 fragment survives
	topo := train.Topology{D: 1, P: 1, T: 1}
	if cov := s.CoveredPositions(topo); cov[topo.PositionKey(0)] {
		t.Fatal("unreconstructable entry reported covered")
	}
	if s.Any() {
		t.Fatal("Any = true with <k fragments")
	}
	if cands := s.RestoreCandidates(); len(cands) != 0 {
		t.Fatalf("RestoreCandidates = %d, want none", len(cands))
	}
}

func TestStripedRetentionPrunesFragments(t *testing.T) {
	env := vclock.NewEnv(1)
	s := mustShelter(t, env, stripedParams()) // Retain = 2
	pk := &fakePeeker{rank: 0}
	rep := s.NewReplicator(0, nil, []int{1, 2, 3}, 1e6, 2e9)
	env.Go("drive", func(p *vclock.Proc) {
		for it := 1; it <= 5; it++ {
			pk.iter = it
			rep.Offer(pk)
			p.Sleep(vclock.Second)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for it := 1; it <= 5; it++ {
		dir := EntryRef{Job: "job", Iter: it, Rank: 0}.Dir()
		has := checkpoint.HasFrag(s.Host(1), dir, 0)
		want := it >= 4
		if has != want {
			t.Errorf("iter %d fragment present=%v, want %v", it, has, want)
		}
	}
}
