package peerckpt

import (
	"fmt"
	"hash/fnv"
	"sort"

	"jitckpt/internal/checkpoint"
	"jitckpt/internal/failure"
	"jitckpt/internal/gpu"
	"jitckpt/internal/trace"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

// fnvSum is the same FNV-1a digest the checkpoint tier uses for entry
// checksums; stripes carry it end-to-end so a decode that produced wrong
// bytes (it cannot, but trust nothing) would still be rejected.
func fnvSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// shipStripe encodes one rank's state into k+m fragments and commits
// fragment i to r.hosts[i]. Called from the replicator's background
// process after D2H staging; the encode cost is charged here, overlapped
// with the next minibatch like the transfers themselves.
func (r *Replicator) shipStripe(p *vclock.Proc, ms *train.ModelState) {
	s := r.shelter
	k, m := s.params.DataShards, s.params.ParityShards
	if s.NotePhase != nil {
		s.NotePhase(r.rank, failure.PhaseEncode)
	}
	sp := trace.Of(s.env).Begin(p.Now(), "peer", trace.Rank(r.rank), "rs-encode",
		"iter", ms.Iter, "k", k, "m", m)
	data, err := ms.Encode()
	if err != nil {
		sp.End(p.Now(), "err", err)
		s.env.Tracef("peerckpt: rank %d stripe encode: %v", r.rank, err)
		return
	}
	t0 := p.Now()
	// Charge the GF(2^8) table-multiply cost over the modelled payload.
	p.Sleep(gpu.TransferTime(r.bytes, s.params.CodecBandwidth))
	frags, err := s.codec.Encode(s.codec.Split(data))
	if err != nil {
		sp.End(p.Now(), "err", err)
		s.env.Tracef("peerckpt: rank %d stripe encode: %v", r.rank, err)
		return
	}
	s.encodes++
	s.encodeTime += p.Now() - t0
	s.bytesProtected += r.bytes
	sp.End(p.Now())

	fragBytes := (r.bytes + int64(k) - 1) / int64(k)
	dataSum := fnvSum(data)
	for i, n := range r.hosts {
		if i >= len(frags) {
			break
		}
		if s.lost[n] {
			continue
		}
		fm := checkpoint.FragMeta{
			Iter: ms.Iter, Rank: ms.Rank, Frag: i, K: k, M: m,
			DataLen: len(data), DataSum: dataSum,
		}
		if err := s.commitFrag(p, n, fm, frags[i], fragBytes); err != nil {
			s.env.Tracef("peerckpt: rank %d frag %d -> node %d: %v", r.rank, i, n, err)
		}
	}
}

// commitFrag writes one fragment into a host node's store with the
// FMETA-last protocol, retrying transient faults, then prunes the rank's
// old iterations there.
func (s *Shelter) commitFrag(p *vclock.Proc, node int, fm checkpoint.FragMeta, frag []byte, fragBytes int64) error {
	st := s.Host(node)
	if st == nil {
		return fmt.Errorf("peerckpt: host node %d is lost", node)
	}
	ref := EntryRef{Job: s.job, Iter: fm.Iter, Rank: fm.Rank}
	sp := trace.Of(s.env).Begin(p.Now(), "peer", trace.Rank(fm.Rank), "shelter-frag",
		"node", node, "iter", fm.Iter, "frag", fm.Frag)
	if err := s.retry.Do(p, func() error {
		return checkpoint.WriteFrag(p, st, ref.Dir(), fm, frag, fragBytes)
	}); err != nil {
		sp.End(p.Now(), "err", err)
		return err
	}
	sp.End(p.Now())
	s.commits++
	s.bytesSheltered += fragBytes
	s.pruneRank(st, fm.Rank, fm.Iter)
	return nil
}

// fragSets scans surviving hosts for committed fragments — zero-time
// metadata lookups — and returns, per entry, which fragment indices
// survive and on which node (first surviving host in node order wins a
// duplicate index).
func (s *Shelter) fragSets() map[EntryRef]map[int]int {
	out := make(map[EntryRef]map[int]int)
	total := s.params.Fragments()
	for _, n := range s.survivingNodes() {
		st := s.hosts[n]
		for _, ref := range entriesIn(st, s.job) {
			for idx := 0; idx < total; idx++ {
				if !checkpoint.HasFrag(st, ref.Dir(), idx) {
					continue
				}
				frags, ok := out[ref]
				if !ok {
					frags = make(map[int]int)
					out[ref] = frags
				}
				if _, dup := frags[idx]; !dup {
					frags[idx] = n
				}
			}
		}
	}
	return out
}

// RestoreCandidates offers every reconstructable stripe to the restore
// assembler: entries with ≥k surviving fragments, as candidates whose
// Probe deep-validates the fragment set (per-fragment checksums feed the
// erasure list) and whose Load gathers k fragments, decodes parity on
// the fly when data shards are missing — charging the decode to virtual
// time — and verifies the reassembled payload end-to-end. Replication
// mode has no stripes and returns nil (complete replica entries already
// reach the assembler through Sources).
func (s *Shelter) RestoreCandidates() []checkpoint.Candidate {
	if !s.params.Striped() {
		return nil
	}
	sets := s.fragSets()
	refs := make([]EntryRef, 0, len(sets))
	for ref := range sets {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Iter != refs[j].Iter {
			return refs[i].Iter > refs[j].Iter
		}
		return refs[i].Rank < refs[j].Rank
	})
	var out []checkpoint.Candidate
	for _, ref := range refs {
		frags := sets[ref]
		if len(frags) < s.params.DataShards {
			continue
		}
		ref, frags := ref, frags
		out = append(out, checkpoint.Candidate{
			Iter: ref.Iter,
			Rank: ref.Rank,
			Probe: func(p *vclock.Proc) bool {
				return s.probeStripe(p, ref, frags)
			},
			Load: func(p *vclock.Proc) (*train.ModelState, error) {
				return s.loadStripe(p, ref, frags)
			},
			Desc: fmt.Sprintf("peer-stripe:%s", ref.Dir()),
		})
	}
	return out
}

// probeStripe deep-validates a stripe at metadata cost: it counts
// fragments whose per-fragment checksum still matches and reports
// whether at least k survive. A fragment corrupted in place since the
// zero-time scan fails its checksum here and drops out of the count.
func (s *Shelter) probeStripe(p *vclock.Proc, ref EntryRef, frags map[int]int) bool {
	valid := 0
	total := s.params.Fragments()
	for idx := 0; idx < total; idx++ {
		node, ok := frags[idx]
		if !ok || s.lost[node] {
			continue
		}
		st := s.hosts[node]
		if st == nil {
			continue
		}
		if checkpoint.ValidFragDeep(p, st, ref.Dir(), idx) {
			valid++
		}
	}
	return valid >= s.params.DataShards
}

// loadStripe reads k fragments of a stripe — data shards first, so an
// intact stripe skips the decode entirely — reconstructs missing data
// shards from parity when needed (decode latency charged via the codec
// bandwidth), reassembles the payload, and verifies it end-to-end
// against the stripe's recorded checksum.
func (s *Shelter) loadStripe(p *vclock.Proc, ref EntryRef, frags map[int]int) (*train.ModelState, error) {
	if s.NotePhase != nil {
		s.NotePhase(ref.Rank, failure.PhaseReconstruct)
	}
	k := s.params.DataShards
	total := s.params.Fragments()
	sp := trace.Of(s.env).Begin(p.Now(), "peer", trace.Rank(ref.Rank), "reconstruct",
		"iter", ref.Iter)
	shards := make([][]byte, total)
	var meta *checkpoint.FragMeta
	var modelBytes int64
	have := 0
	for idx := 0; idx < total && have < k; idx++ {
		node, ok := frags[idx]
		if !ok || s.lost[node] {
			continue
		}
		st := s.hosts[node]
		if st == nil {
			continue
		}
		fm, data, err := checkpoint.ReadFrag(p, st, ref.Dir(), idx)
		if err != nil {
			// Corrupt or vanished since the probe: erase it and let
			// parity make up the difference.
			s.fragErasures++
			trace.Of(s.env).Instant(p.Now(), "peer", trace.Rank(ref.Rank), "frag-erased",
				"iter", ref.Iter, "frag", idx, "err", err)
			continue
		}
		if meta == nil {
			meta = &fm
		} else if fm.K != meta.K || fm.M != meta.M || fm.ShardLen != meta.ShardLen ||
			fm.DataLen != meta.DataLen || fm.DataSum != meta.DataSum {
			// A fragment from a different stripe generation: unusable.
			s.fragErasures++
			continue
		}
		shards[idx] = data
		modelBytes += st.ModelBytes(checkpoint.FragPath(ref.Dir(), idx))
		have++
	}
	if have < k || meta == nil {
		err := fmt.Errorf("%w: stripe %s: %d of %d fragments readable, need %d",
			checkpoint.ErrCorrupt, ref, have, total, k)
		sp.End(p.Now(), "err", err)
		return nil, err
	}
	decoded := false
	for i := 0; i < k; i++ {
		if shards[i] == nil {
			decoded = true
			break
		}
	}
	if decoded {
		t0 := p.Now()
		p.Sleep(gpu.TransferTime(modelBytes, s.params.CodecBandwidth))
		if err := s.codec.Reconstruct(shards); err != nil {
			sp.End(p.Now(), "err", err)
			return nil, fmt.Errorf("stripe %s: %w", ref, err)
		}
		s.decodes++
		s.decodeTime += p.Now() - t0
	}
	data, err := s.codec.Join(shards[:k], meta.DataLen)
	if err != nil {
		sp.End(p.Now(), "err", err)
		return nil, err
	}
	if fnvSum(data) != meta.DataSum {
		err := fmt.Errorf("%w: stripe %s fails end-to-end checksum after decode",
			checkpoint.ErrCorrupt, ref)
		sp.End(p.Now(), "err", err)
		return nil, err
	}
	ms, err := train.DecodeModelState(data)
	if err != nil {
		sp.End(p.Now(), "err", err)
		return nil, err
	}
	sp.End(p.Now(), "decoded", decoded)
	return ms, nil
}
