// Package peerckpt implements a peer-to-peer in-memory checkpoint tier:
// every iteration, each rank streams its post-optimizer parameter and
// optimizer state into the CPU memory of ring-neighbor nodes in *other*
// failure domains, overlapped with the next minibatch's compute
// (Checkmate-style replication, arXiv:2507.13522; see also SWIFT,
// arXiv:2302.06173).
//
// The tier closes the one gap the paper's JIT checkpointing provably
// cannot: when every data-parallel replica of a shard is lost at once, no
// healthy rank holds the state and no JIT checkpoint can be taken. The
// seed's answer was a 1/day disk checkpoint (losing up to a day); the
// shelter instead holds, in surviving hosts' RAM, a complete post-optimizer
// image at most one iteration old — so even a node-level failure that
// destroys every replica of a shard rolls back ≤ 1 minibatch.
//
// Mechanics:
//
//   - Each shelter host is a checkpoint.Store whose write/read bandwidth is
//     the modelled interconnect link, so transfers cost vclock time. Entries
//     use the same RankDir layout and META-last commit protocol as every
//     other tier, which is what lets restore mix shelter entries with disk
//     checkpoints through checkpoint.AssembleSources.
//
//   - A Replicator per rank offers the state after each RunIter returns
//     (compute stream synchronized, so buffer contents are exactly the
//     post-optimizer state and Iter names the next minibatch). The capture
//     itself is a zero-time privileged read (Worker.PeekModelState); the
//     D2H staging and link transfer are charged in a background process —
//     replication overlaps the next minibatch and adds no critical-path
//     stall. If the previous transfer is still in flight the offer is
//     skipped (the shelter ages one extra iteration rather than stalling
//     training — the Checkmate trade).
//
//   - Shelter entries survive GPU failures (host RAM outlives the device)
//     but die with their node: the harness calls MarkNodeLost for
//     whole-host failures, which is why placement (scheduler.PeerPlan)
//     never shelters a rank's state inside its own failure domain.
package peerckpt

import (
	"fmt"
	"sort"

	"jitckpt/internal/checkpoint"
	"jitckpt/internal/erasure"
	"jitckpt/internal/failure"
	"jitckpt/internal/gpu"
	"jitckpt/internal/trace"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

// PolicyName is the checkpoint-store namespace for peer-sheltered entries.
const PolicyName = "peer"

// Params model the shelter tier.
type Params struct {
	// LinkBandwidth is the rank→peer-CPU-memory streaming bandwidth,
	// bytes/second.
	LinkBandwidth float64
	// Latency is the fixed per-transfer cost.
	Latency vclock.Time
	// Copies is how many peer hosts shelter each rank's state in
	// replication mode (ignored when striping is enabled).
	Copies int
	// Retain is how many iterations of entries each host keeps per rank
	// (≥ 2, so a torn in-flight write never leaves a rank uncovered).
	Retain int
	// DataShards (k) and ParityShards (m) switch the shelter from full
	// replication to Reed-Solomon striping: each rank's state is split
	// into k data shards extended with m parity fragments, spread over
	// k+m distinct peer hosts. Any k surviving fragments reconstruct the
	// state, so the entry survives any m fragment-host losses at
	// (k+m)/k× overhead instead of replication's Copies×. Zero
	// DataShards (the default) keeps replication mode.
	DataShards   int
	ParityShards int
	// CodecBandwidth is the Reed-Solomon encode/decode throughput in
	// payload bytes/second; encode is charged in the background
	// replication process, decode on the restore path.
	CodecBandwidth float64
}

// DefaultParams returns the standard shelter configuration: one copy per
// rank over a 100 Gb/s-class link, retaining two iterations, with a
// table-driven GF(2^8) codec worth ~10 GB/s when striping is enabled.
func DefaultParams() Params {
	return Params{
		LinkBandwidth:  12.5e9,
		Latency:        200 * vclock.Microsecond,
		Copies:         1,
		Retain:         2,
		CodecBandwidth: 10e9,
	}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.LinkBandwidth <= 0 {
		p.LinkBandwidth = d.LinkBandwidth
	}
	if p.Latency <= 0 {
		p.Latency = d.Latency
	}
	if p.Copies <= 0 {
		p.Copies = d.Copies
	}
	if p.Retain < 2 {
		p.Retain = d.Retain
	}
	if p.CodecBandwidth <= 0 {
		p.CodecBandwidth = d.CodecBandwidth
	}
	return p
}

// Striped reports whether the shelter runs in Reed-Solomon mode.
func (p Params) Striped() bool { return p.DataShards != 0 || p.ParityShards != 0 }

// Fragments returns the stripe width k+m (0 in replication mode).
func (p Params) Fragments() int {
	if !p.Striped() {
		return 0
	}
	return p.DataShards + p.ParityShards
}

// SurvivableDomains returns how many simultaneous failure-domain losses
// an entry survives while remaining restorable, counting the owner's own
// domain (placement keeps shelter hosts out of it): replication with c
// copies survives c, RS(k,m) survives m+1.
func (p Params) SurvivableDomains() int {
	if p.Striped() {
		return p.ParityShards + 1
	}
	return p.Copies
}

// Overhead returns the sheltered-byte cost factor per protected byte:
// Copies× for replication, (k+m)/k× for striping.
func (p Params) Overhead() float64 {
	if p.Striped() {
		return float64(p.DataShards+p.ParityShards) / float64(p.DataShards)
	}
	return float64(p.Copies)
}

// Availability describes the cluster a shelter places into, for
// construction-time validation. Zero fields skip the corresponding check
// (unit tests and callers that cannot know the cluster shape).
type Availability struct {
	// Nodes is how many nodes could host fragments — including each
	// rank's own node, which placement excludes.
	Nodes int
	// FailureDomains is the number of distinct racks across those nodes.
	FailureDomains int
}

// Validate rejects shelter configurations that could not place safely:
// k<1 or m<0 stripes, stripes wider than the available peer hosts, and
// stripes whose parity budget exceeds the cluster's failure domains —
// descriptive errors at construction instead of silent misplacement at
// commit time.
func (p Params) Validate(avail Availability) error {
	if p.Striped() {
		k, m := p.DataShards, p.ParityShards
		if k < 1 {
			return fmt.Errorf("peerckpt: DataShards k=%d: a stripe needs at least one data shard", k)
		}
		if m < 0 {
			return fmt.Errorf("peerckpt: ParityShards m=%d cannot be negative", m)
		}
		if k+m > 255 {
			return fmt.Errorf("peerckpt: k+m=%d fragments exceed the 255 GF(2^8) supports", k+m)
		}
		if avail.Nodes > 0 && k+m > avail.Nodes-1 {
			return fmt.Errorf("peerckpt: stripe needs k+m=%d peer hosts but only %d of %d nodes are eligible (a rank's own node never shelters its stripe)",
				k+m, avail.Nodes-1, avail.Nodes)
		}
		if avail.FailureDomains > 0 && avail.FailureDomains < m+1 {
			return fmt.Errorf("peerckpt: RS(%d,%d) wants ≥%d failure domains to keep any single-domain loss ≤m fragments, cluster has %d",
				k, m, m+1, avail.FailureDomains)
		}
		return nil
	}
	if avail.Nodes > 0 && p.Copies > avail.Nodes-1 {
		return fmt.Errorf("peerckpt: Copies=%d needs that many peer hosts but only %d of %d nodes are eligible",
			p.Copies, avail.Nodes-1, avail.Nodes)
	}
	return nil
}

// Shelter is the job-wide peer checkpoint tier: one CPU-memory store per
// hosting node, entry bookkeeping, and replication statistics. It persists
// across job incarnations (host RAM outlives job restarts) until a node
// itself is lost.
type Shelter struct {
	env    *vclock.Env
	job    string
	params Params
	codec  *erasure.Codec // non-nil iff params.Striped()

	hosts map[int]*checkpoint.Store // node ID -> shelter store
	lost  map[int]bool
	chaos func(path string) checkpoint.WriteOutcome
	retry checkpoint.RetryPolicy

	// NotePhase, when set, is called as ranks enter codec phases
	// (failure.PhaseEncode / failure.PhaseReconstruct) so phase-armed
	// fault injection can land mid-encode or mid-reconstruction.
	NotePhase func(rank int, ph failure.Phase)

	// Stats.
	offers          int
	skips           int
	commits         int
	bytesSheltered  int64
	bytesProtected  int64
	piggybackBytes  int64
	piggybackWaves  int
	abortedCaptures int
	encodes         int
	decodes         int
	fragErasures    int
	encodeTime      vclock.Time
	decodeTime      vclock.Time
}

// NewShelter creates an empty shelter for a job, validating params
// against the cluster's availability (see Params.Validate) and building
// the Reed-Solomon codec when striping is configured.
func NewShelter(env *vclock.Env, job string, params Params, avail Availability) (*Shelter, error) {
	params = params.withDefaults()
	if err := params.Validate(avail); err != nil {
		return nil, err
	}
	s := &Shelter{
		env:    env,
		job:    job,
		params: params,
		hosts:  make(map[int]*checkpoint.Store),
		lost:   make(map[int]bool),
		retry:  checkpoint.DefaultRetry(),
	}
	if params.Striped() {
		c, err := erasure.New(params.DataShards, params.ParityShards)
		if err != nil {
			return nil, err
		}
		s.codec = c
	}
	return s, nil
}

// Params returns the shelter's effective configuration.
func (s *Shelter) Params() Params { return s.params }

// SetStoreChaos installs a write-fault hook on every shelter host store,
// current and future (hosts are created lazily, so the hook must outlive
// any one store).
func (s *Shelter) SetStoreChaos(fn func(path string) checkpoint.WriteOutcome) {
	s.chaos = fn
	for _, st := range s.hosts {
		st.SetChaos(fn)
	}
}

// Host returns (creating lazily) the shelter store in a node's CPU memory,
// or nil if the node has been lost.
func (s *Shelter) Host(node int) *checkpoint.Store {
	if s.lost[node] {
		return nil
	}
	st, ok := s.hosts[node]
	if !ok {
		st = checkpoint.NewStore(s.env, fmt.Sprintf("peer.n%d", node), checkpoint.StoreParams{
			WriteBW: s.params.LinkBandwidth,
			ReadBW:  s.params.LinkBandwidth,
			Latency: s.params.Latency,
		})
		st.SetChaos(s.chaos)
		s.hosts[node] = st
	}
	return st
}

// MarkNodeLost drops a node's shelter store: a whole-host failure takes
// the sheltered entries with it. GPU failures must NOT be reported here —
// host RAM survives them, which is precisely the shelter's value.
func (s *Shelter) MarkNodeLost(node int) {
	if s.lost[node] {
		return
	}
	s.lost[node] = true
	if _, ok := s.hosts[node]; ok {
		delete(s.hosts, node)
		s.env.Tracef("peerckpt: node %d lost, sheltered entries gone", node)
	}
	trace.Of(s.env).Instant(s.env.Now(), "peer", trace.LaneSim, "node-lost", "node", node)
}

// survivingNodes returns the IDs of hosting nodes still alive, sorted.
func (s *Shelter) survivingNodes() []int {
	out := make([]int, 0, len(s.hosts))
	for n := range s.hosts {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Sources lists the surviving shelter stores as restore sources for
// checkpoint.AssembleSources, in deterministic node order.
func (s *Shelter) Sources() []checkpoint.Source {
	var out []checkpoint.Source
	for _, n := range s.survivingNodes() {
		out = append(out, checkpoint.Source{Store: s.hosts[n], Policy: PolicyName})
	}
	return out
}

// commit writes one rank's state into a host node's store with the
// META-last protocol — retrying transient store faults with bounded
// backoff — then prunes that rank's old iterations beyond the retention
// window. It is called from the replicator's background process, which
// owns the timing.
func (s *Shelter) commit(p *vclock.Proc, node int, ms *train.ModelState, stateBytes int64) error {
	st := s.Host(node)
	if st == nil {
		return fmt.Errorf("peerckpt: host node %d is lost", node)
	}
	sp := trace.Of(s.env).Begin(p.Now(), "peer", trace.Rank(ms.Rank), "shelter-commit",
		"node", node, "iter", ms.Iter)
	dir := checkpoint.RankDir(s.job, PolicyName, ms.Iter, ms.Rank)
	if err := checkpoint.WriteRankRetry(p, st, dir, ms, stateBytes, s.retry); err != nil {
		sp.End(p.Now(), "err", err)
		return err
	}
	sp.End(p.Now())
	s.commits++
	s.bytesSheltered += stateBytes
	s.pruneRank(st, ms.Rank, ms.Iter)
	return nil
}

// pruneRank deletes a rank's entries older than the retention window in
// one host store (a metadata operation; no time charged). Entry
// enumeration goes through the typed key helper, so replica objects and
// erasure fragments under the same entry directory prune together.
func (s *Shelter) pruneRank(st *checkpoint.Store, rank, newest int) {
	for _, ref := range entriesIn(st, s.job) {
		if ref.Rank != rank {
			continue
		}
		if ref.Iter <= newest-s.params.Retain {
			for _, obj := range st.List(ref.Dir() + "/") {
				st.Delete(obj)
			}
		}
	}
}

// CoveredPositions returns the positions whose state the shelter can
// restore, keyed by train.Topology.PositionKey. The scheduler's restart
// quorum counts these as pre-covered: a position whose every live replica
// died needs no fresh JIT checkpoint if its state is sheltered. In
// replication mode an entry counts when a surviving host holds it
// complete; in striped mode it counts when it is *reconstructable* — at
// least k distinct fragments survive across hosts, whether or not any
// single host holds usable state. Zero-time metadata scan.
func (s *Shelter) CoveredPositions(topo train.Topology) map[string]bool {
	out := make(map[string]bool)
	// Complete replica entries: replication commits and failure-time JIT
	// flushes (which write whole entries even in striped mode).
	for _, n := range s.survivingNodes() {
		st := s.hosts[n]
		for _, ref := range entriesIn(st, s.job) {
			if ref.Rank >= topo.World() {
				continue
			}
			if checkpoint.HasComplete(st, ref.Dir()) {
				out[topo.PositionKey(ref.Rank)] = true
			}
		}
	}
	if !s.params.Striped() {
		return out
	}
	for ref, frags := range s.fragSets() {
		if ref.Rank >= topo.World() {
			continue
		}
		if len(frags) >= s.params.DataShards {
			out[topo.PositionKey(ref.Rank)] = true
		}
	}
	return out
}

// Any reports whether the shelter holds any restorable entry: a complete
// replica on a surviving host, or (striped mode) a reconstructable
// fragment quorum.
func (s *Shelter) Any() bool {
	for _, n := range s.survivingNodes() {
		st := s.hosts[n]
		for _, ref := range entriesIn(st, s.job) {
			if checkpoint.HasComplete(st, ref.Dir()) {
				return true
			}
		}
	}
	if !s.params.Striped() {
		return false
	}
	for _, frags := range s.fragSets() {
		if len(frags) >= s.params.DataShards {
			return true
		}
	}
	return false
}

// FlushStore picks the store a failure-time JIT flush should write to for
// a rank homed on ownNode: a surviving assigned host if any, else any
// surviving host outside the rank's own failure domain, else (weakest) a
// fresh store on any live non-own node among those ever seen. It never
// returns the rank's own node's store; nil means no eligible host
// survives.
func (s *Shelter) FlushStore(ownNode int, assigned []int) *checkpoint.Store {
	for _, n := range assigned {
		if n != ownNode && !s.lost[n] {
			return s.Host(n)
		}
	}
	for _, n := range s.survivingNodes() {
		if n != ownNode {
			return s.hosts[n]
		}
	}
	return nil
}

// NotePiggyback records one observed gradient all-reduce window — the
// traffic Checkmate-style replication rides along with. The ratio of
// BytesSheltered to PiggybackBytes is the tier's relative bandwidth cost.
func (s *Shelter) NotePiggyback(bytes int64) {
	s.piggybackWaves++
	s.piggybackBytes += bytes
}

// Stats is a snapshot of the shelter's replication counters.
type Stats struct {
	// Offers counts replication attempts; Skips those dropped because the
	// previous transfer was still in flight; Commits completed entry (or
	// fragment) writes.
	Offers, Skips, Commits int
	// AbortedCaptures counts transfers abandoned because the owner device
	// died before staging completed.
	AbortedCaptures int
	// BytesSheltered is the total volume written into peer CPU memory;
	// BytesProtected is the state volume those writes covered. Their
	// ratio is the tier's measured overhead factor (Copies× for
	// replication, (k+m)/k× for striping).
	BytesSheltered int64
	BytesProtected int64
	// PiggybackWaves/PiggybackBytes describe the observed all-reduce
	// windows replication overlaps with.
	PiggybackWaves int
	PiggybackBytes int64
	// Encodes/Decodes count Reed-Solomon codec runs; EncodeTime and
	// DecodeTime the virtual time charged for them. FragErasures counts
	// fragments dropped from a reconstruction because they were corrupt
	// or unreadable (the per-fragment-checksum erasure list at work).
	Encodes, Decodes int
	FragErasures     int
	EncodeTime       vclock.Time
	DecodeTime       vclock.Time
}

// Stats returns the current counters.
func (s *Shelter) Stats() Stats {
	return Stats{
		Offers: s.offers, Skips: s.skips, Commits: s.commits,
		AbortedCaptures: s.abortedCaptures,
		BytesSheltered:  s.bytesSheltered,
		BytesProtected:  s.bytesProtected,
		PiggybackWaves:  s.piggybackWaves,
		PiggybackBytes:  s.piggybackBytes,
		Encodes:         s.encodes,
		Decodes:         s.decodes,
		FragErasures:    s.fragErasures,
		EncodeTime:      s.encodeTime,
		DecodeTime:      s.decodeTime,
	}
}

// Replicator drives one rank's per-iteration replication into its assigned
// shelter hosts.
type Replicator struct {
	shelter *Shelter
	rank    int
	dev     *gpu.Device
	hosts   []int
	bytes   int64
	d2hBW   float64

	busy     bool
	lastIter int
}

// NewReplicator creates a replicator for one rank. dev may be nil (no
// owner-death staging check); hosts is the rank's scheduler.PeerPlan
// assignment; d2hBW is the PCIe staging bandwidth charged before the link
// transfer.
func (s *Shelter) NewReplicator(rank int, dev *gpu.Device, hosts []int, stateBytes int64, d2hBW float64) *Replicator {
	return &Replicator{
		shelter:  s,
		rank:     rank,
		dev:      dev,
		hosts:    append([]int(nil), hosts...),
		bytes:    stateBytes,
		d2hBW:    d2hBW,
		lastIter: -1,
	}
}

// LastIter returns the newest iteration this replicator has offered
// (-1 before the first offer).
func (r *Replicator) LastIter() int { return r.lastIter }

// StatePeeker is the slice of train.Worker the replicator needs: a
// zero-time privileged read of the current model/optimizer state.
type StatePeeker interface {
	PeekModelState() (*train.ModelState, error)
}

// Offer captures the worker's post-optimizer state and streams it to the
// assigned shelter hosts in a background process, returning immediately.
// Call it right after RunIter returns: the compute stream is synchronized,
// so the zero-time peek sees exactly the post-optimizer image and
// ms.Iter = N+1 means "state at the start of minibatch N+1" — the same
// invariant every other checkpoint tier records. If the previous transfer
// is still in flight, the offer is skipped.
func (r *Replicator) Offer(w StatePeeker) {
	s := r.shelter
	s.offers++
	if r.busy {
		s.skips++
		return
	}
	live := false
	for _, n := range r.hosts {
		if !s.lost[n] {
			live = true
			break
		}
	}
	if !live {
		s.skips++
		return
	}
	ms, err := w.PeekModelState()
	if err != nil {
		s.skips++
		s.env.Tracef("peerckpt: rank %d peek failed: %v", r.rank, err)
		return
	}
	r.busy = true
	iter := ms.Iter
	s.env.Go(fmt.Sprintf("peerrepl.r%d", r.rank), func(p *vclock.Proc) {
		defer func() { r.busy = false }()
		sp := trace.Of(s.env).Begin(p.Now(), "peer", trace.Rank(r.rank), "replicate", "iter", iter)
		defer func() { sp.End(p.Now()) }()
		// Stage the state through host memory (PCIe D2H), overlapped with
		// the next minibatch's compute.
		if r.d2hBW > 0 {
			p.Sleep(gpu.TransferTime(r.bytes, r.d2hBW))
		}
		// If the owner died mid-staging, the image never fully left the
		// device: abandon it. Once staged, the transfer completes even if
		// the owner dies — the bytes live in host/peer memory.
		if r.dev != nil && !r.dev.Accessible() {
			s.abortedCaptures++
			trace.Of(s.env).Instant(p.Now(), "peer", trace.Rank(r.rank), "capture-abort", "iter", iter)
			return
		}
		if s.params.Striped() {
			r.shipStripe(p, ms)
			r.lastIter = iter
			return
		}
		s.bytesProtected += r.bytes
		for _, n := range r.hosts {
			if s.lost[n] {
				continue
			}
			if err := s.commit(p, n, ms, r.bytes); err != nil {
				s.env.Tracef("peerckpt: rank %d -> node %d: %v", r.rank, n, err)
			}
		}
		r.lastIter = iter
	})
}
