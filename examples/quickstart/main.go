// Quickstart: run a 4-GPU data-parallel training job with user-level
// just-in-time checkpointing, kill one GPU mid-training, and watch the job
// recover by replaying exactly one minibatch — with a loss trajectory that
// matches the failure-free run bit for bit.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"jitckpt/internal/core"
	"jitckpt/internal/failure"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

func main() {
	// A small data-parallel workload: 4 GPUs on 2 nodes, 50 ms
	// minibatches, Adam. Any Table 2 workload works the same way.
	wl := workload.Workload{
		Name: "quickstart", GPU: "A100-80GB", ParamsB: 0.01, Nodes: 2, PerNode: 2,
		Topo:       train.Topology{D: 4, P: 1, T: 1},
		Minibatch:  50 * vclock.Millisecond,
		CkptTarget: vclock.Seconds(0.5), RestoreTarget: vclock.Seconds(1),
		NCCLInitBase: 200 * vclock.Millisecond, NCCLInitPerRank: 5 * vclock.Millisecond,
		Teardown: 100 * vclock.Millisecond, CRIU: vclock.Second,
		Layers: 2, Hidden: 8,
	}
	const iters = 20

	// Reference: the same job with no failures.
	ref, err := core.Run(core.JobConfig{
		WL: wl, Policy: core.PolicyUserJIT, Iters: iters, Seed: 7, CollectLoss: true,
	})
	if err != nil || !ref.Completed {
		log.Fatalf("reference run failed: %v", err)
	}

	// The real run: rank 3's GPU dies hard in the middle of minibatch 10.
	res, err := core.Run(core.JobConfig{
		WL: wl, Policy: core.PolicyUserJIT, Iters: iters, Seed: 7, CollectLoss: true,
		SpareNodes:   1,
		HangTimeout:  2 * vclock.Second,
		IterFailures: []core.IterInjection{{Iter: 10, Frac: 0.5, Rank: 3, Kind: failure.GPUHard}},
	})
	if err != nil || !res.Completed {
		log.Fatalf("run failed: %v (completed=%v)", err, res != nil && res.Completed)
	}

	fmt.Println("Just-in-time checkpointing quickstart")
	fmt.Println("=====================================")
	fmt.Printf("GPU hard failure injected on rank 3 at minibatch 10.\n\n")
	fmt.Printf("Healthy replicas detected the hang, stole the GIL from the wedged\n")
	fmt.Printf("main thread, and checkpointed their GPU state just in time:\n")
	fmt.Printf("  JIT checkpoint:  %v\n", res.JITCheckpointTime)
	fmt.Printf("  restore:         %v\n", res.RestoreTime)
	fmt.Printf("  job restarts:    %d (1 = never failed)\n", res.Incarnations)
	fmt.Printf("  minibatches redone: %d (JIT's bound is 1)\n\n", res.ItersExecuted-iters)

	// Semantic preservation: the loss trajectory is bit-identical.
	var its []int
	for it := range ref.Loss {
		its = append(its, it)
	}
	sort.Ints(its)
	exact := true
	for _, it := range its {
		if math.Float32bits(ref.Loss[it]) != math.Float32bits(res.Loss[it]) {
			exact = false
		}
	}
	fmt.Println("Loss trajectory (failure-free vs recovered):")
	for _, it := range its {
		marker := ""
		if it == 10 {
			marker = "   <- failure + JIT recovery here"
		}
		fmt.Printf("  iter %2d: %.6f  %.6f%s\n", it, ref.Loss[it], res.Loss[it], marker)
	}
	if exact {
		fmt.Println("\nExact floating-point match — recovery preserved training semantics.")
	} else {
		fmt.Println("\nWARNING: loss trajectories diverged!")
	}
}
