// Hard-error migration: a 2-node, 8-GPU, 3D-parallel (2D-2P-2T) job loses
// a GPU to an unrecoverable hardware failure. Healthy ranks checkpoint
// their GPU state just in time, every worker's CPU state is captured
// CRIU-style, the job migrates to spare nodes, and GPU state is rebuilt
// from the replay log plus the checkpoint files — the dead GPU's rank
// reading its data-parallel replica's file via the stable tensor naming.
//
//	go run ./examples/harderror
package main

import (
	"fmt"
	"log"
	"os"

	"jitckpt/internal/core"
	"jitckpt/internal/failure"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

func main() {
	wl := workload.Workload{
		Name: "harderror-3d", GPU: "V100-32GB", ParamsB: 0.05, Nodes: 2, PerNode: 4,
		Topo:       train.Topology{D: 2, P: 2, T: 2}, // 8 ranks
		Minibatch:  80 * vclock.Millisecond,
		CkptTarget: vclock.Seconds(0.8), RestoreTarget: vclock.Seconds(2),
		NCCLInitBase: 300 * vclock.Millisecond, NCCLInitPerRank: 10 * vclock.Millisecond,
		Teardown: 150 * vclock.Millisecond, CRIU: 3 * vclock.Second,
		Layers: 4, Hidden: 8,
	}
	const iters = 14
	const victim = 5 // rank (d1, p0, t1): its replica is rank 1 (d0, p0, t1)

	trace := len(os.Args) > 1 && os.Args[1] == "-trace"
	cfg := core.JobConfig{
		WL: wl, Policy: core.PolicyTransparentJIT, Iters: iters, Seed: 3, CollectLoss: true,
		SpareNodes:   2,
		HangTimeout:  2 * vclock.Second,
		IterFailures: []core.IterInjection{{Iter: 7, Frac: 0.5, Rank: victim, Kind: failure.GPUHard}},
	}
	if trace {
		cfg.Trace = func(at vclock.Time, format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "[%v] %s\n", at, fmt.Sprintf(format, args...))
		}
	}
	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Hard-error migration demo (2D-2P-2T, 8 GPUs, 2 nodes + 2 spares)")
	fmt.Println("================================================================")
	d, p, t := wl.Topo.Coords(victim)
	fmt.Printf("rank %d (d=%d, p=%d, t=%d) lost its GPU at minibatch 7.\n", victim, d, p, t)
	fmt.Printf("replica ranks holding identical state: %v\n\n", wl.Topo.ReplicaRanks(victim))
	if !res.Completed {
		log.Fatalf("job did not complete (reports=%d)", len(res.Reports))
	}
	for _, rep := range res.Reports {
		fmt.Printf("recovery kind:       %s\n", rep.Kind)
		fmt.Printf("end-to-end:          %v\n", rep.Total())
		fmt.Printf("healthy-rank work:   %v (JIT checkpoint + CRIU + rebuild)\n", rep.HealthyAvg)
		fmt.Printf("failed-rank work:    %v (no GPU state to save; reads replica's file)\n", rep.FailedAvg)
		fmt.Println("healthy-rank steps:")
		for _, ph := range rep.Phases {
			fmt.Printf("  %-18s %v\n", ph.Name, ph.Dur)
		}
	}
	fmt.Printf("\njob completed %d minibatches in %v; loss tail:", iters, res.WallTime)
	for it := iters - 3; it < iters; it++ {
		fmt.Printf(" [%d]=%.6f", it, res.Loss[it])
	}
	fmt.Println()
	fmt.Println("\n(run with -trace to watch the full recovery event stream)")
}
