// Comparison: just-in-time vs periodic checkpointing, two ways.
//
// First, empirically: the same failure under PC_disk (restart from the
// last periodic checkpoint, redoing several minibatches) versus user-level
// JIT (checkpoint after the failure, redoing at most one) versus
// transparent JIT (no restart at all).
//
// Second, analytically: the §5 model's wasted-GPU-time fractions across
// cluster sizes, showing the crossover where JIT starts to win and how the
// gap widens toward 8192 GPUs (the paper's Table 8 trend).
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"jitckpt/internal/analysis"
	"jitckpt/internal/core"
	"jitckpt/internal/failure"
	"jitckpt/internal/metrics"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

func main() {
	wl := workload.Workload{
		Name: "compare", GPU: "A100-80GB", ParamsB: 0.02, Nodes: 2, PerNode: 2,
		Topo:       train.Topology{D: 4, P: 1, T: 1},
		Minibatch:  60 * vclock.Millisecond,
		CkptTarget: vclock.Seconds(0.6), RestoreTarget: vclock.Seconds(1.2),
		NCCLInitBase: 200 * vclock.Millisecond, NCCLInitPerRank: 5 * vclock.Millisecond,
		Teardown: 100 * vclock.Millisecond, CRIU: vclock.Second,
		Layers: 2, Hidden: 8,
	}
	const iters = 30

	fmt.Println("Part 1: the same GPU failure under four policies")
	fmt.Println("================================================")
	tbl := metrics.NewTable("",
		"Policy", "Completed", "Minibatches redone", "Restarts", "Wall time")
	for _, pol := range []core.Policy{core.PolicyPCDisk, core.PolicyUserJIT, core.PolicyJITWithDaily, core.PolicyTransparentJIT} {
		cfg := core.JobConfig{
			WL: wl, Policy: pol, Iters: iters, Seed: 11,
			SpareNodes:  1,
			HangTimeout: 2 * vclock.Second,
			IterFailures: []core.IterInjection{
				{Iter: 24, Frac: 0.5, Rank: 3, Kind: failure.GPUHard},
			},
		}
		if pol == core.PolicyPCDisk || pol == core.PolicyJITWithDaily {
			// Periodic checkpoint every ~10 minibatches: for PC_disk the
			// failure at minibatch 24 rolls back to the checkpoint at
			// ~20; for the combined policy the JIT checkpoint wins.
			cfg.CkptInterval = 10 * wl.Minibatch
		}
		res, err := core.Run(cfg)
		if err != nil {
			log.Fatalf("%v: %v", pol, err)
		}
		tbl.Row(pol.String(), res.Completed, res.ItersExecuted-iters, res.Incarnations-1, res.WallTime)
	}
	fmt.Println(tbl.Render())

	fmt.Println("Part 2: the §5 analytical model at scale (BERT-L-PT constants)")
	fmt.Println("==============================================================")
	base := analysis.Params{O: 5, R: 9.9, M: 0.418, F: analysis.PerDay(2.0 / 992)}
	at := metrics.NewTable("", "N", "c* interval", "wf Periodic", "wf UserJIT", "wf TransparentJIT", "Periodic/JIT")
	for _, sc := range analysis.ScaleModel(base, []int{4, 64, 1024, 8192, 65536}) {
		ratio := "-"
		if sc.WfUserJIT > 0 {
			ratio = fmt.Sprintf("%.1fx", sc.WfPeriodic/sc.WfUserJIT)
		}
		interval := "-"
		if sc.CStarPerHour > 0 {
			interval = fmt.Sprintf("%.0f min", 60/sc.CStarPerHour)
		}
		at.Row(sc.N, interval,
			fmt.Sprintf("%.3f%%", 100*sc.WfPeriodic),
			fmt.Sprintf("%.3f%%", 100*sc.WfUserJIT),
			fmt.Sprintf("%.3f%%", 100*sc.WfTransparentJIT),
			ratio)
	}
	fmt.Println(at.Render())
	if n := analysis.CrossoverN(base, 1<<22); n >= 0 {
		fmt.Printf("User-level JIT beats optimally-tuned periodic checkpointing for every N >= %d.\n", maxInt(n, 1))
	}
	fmt.Println("Periodic checkpointing also requires *knowing* the failure rate to tune c;")
	fmt.Println("JIT checkpointing removes that guesswork entirely (§8).")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
