// Transparent recovery, assembled by hand: this example wires the full
// §4 stack explicitly — simulated GPUs, device-proxy servers and clients,
// interception layers, training workers, and the recovery coordinator —
// then injects a transient network fault and a sticky CUDA error. The
// "application" (the training loop) contains no checkpointing code and
// never observes either failure.
//
//	go run ./examples/transparent
package main

import (
	"fmt"
	"log"

	"jitckpt/internal/checkpoint"
	"jitckpt/internal/core"
	"jitckpt/internal/cuda"
	"jitckpt/internal/gpu"
	"jitckpt/internal/intercept"
	"jitckpt/internal/nccl"
	"jitckpt/internal/proxy"
	"jitckpt/internal/scheduler"
	"jitckpt/internal/train"
	"jitckpt/internal/vclock"
)

func main() {
	const (
		world = 4
		iters = 16
	)
	env := vclock.NewEnv(42)
	engine := nccl.NewEngine(env, nccl.DefaultParams())
	cluster := gpu.NewCluster(env, 2, 2, 1<<36)
	pool := scheduler.NewPool(env, cluster.Nodes)
	monitor := scheduler.NewMonitor(env)
	store := checkpoint.NewStore(env, "shared", checkpoint.DiskParams())
	kernels := train.Kernels()
	topo := train.Topology{D: world, P: 1, T: 1}

	// Build the per-rank stacks: worker -> interception layer -> proxy
	// client -> proxy server -> device.
	nodes, err := pool.Allocate(2, nil)
	if err != nil {
		log.Fatal(err)
	}
	placement, err := scheduler.Place(nodes, world)
	if err != nil {
		log.Fatal(err)
	}
	ranks := make([]*core.TransparentRank, world)
	coord := core.NewCoordinator(env, core.CoordinatorConfig{
		Job: "demo", Topo: topo,
		Teardown: 100 * vclock.Millisecond, Minibatch: 40 * vclock.Millisecond,
		StateBytes: 1 << 24, Store: store, Monitor: monitor, Pool: pool,
		CRIU:    scheduler.CRIU{SnapshotTime: vclock.Second, RestoreTime: 500 * vclock.Millisecond},
		Kernels: kernels, CUDAParams: cuda.DefaultParams(), ProxyParams: proxy.DefaultParams(),
		OnReport: func(rep *core.RecoveryReport) {
			fmt.Printf("  -> recovered (%s) in %v; steps:", rep.Kind, rep.Total())
			for _, ph := range rep.Phases {
				fmt.Printf(" %s=%v", ph.Name, ph.Dur)
			}
			fmt.Println()
		},
	}, ranks)

	losses := make([]float32, iters)
	for r := 0; r < world; r++ {
		server, err := proxy.NewServer(env, placement[r], engine, kernels, cuda.DefaultParams(), proxy.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		client := proxy.NewClient(env, server)
		layer := intercept.New(env, client, fmt.Sprintf("rank%d", r), intercept.Config{
			Mode:        intercept.ModeTransparent,
			HangTimeout: 2 * vclock.Second,
			OnFault:     coord.Hook(r),
		})
		worker, err := train.NewWorker(train.Config{
			Name: fmt.Sprintf("w%d", r), JobKey: "demo", Rank: r, Topo: topo,
			Model: train.ModelSpec{Layers: 2, Hidden: 8, Seed: 1, ParamBytesPerGPU: 1 << 23, OptBytesPerGPU: 1 << 24},
			Opt:   train.DefaultOptimizer(),
			Step:  train.Uniform(40*vclock.Millisecond, 2),
			API:   layer,
			Hooks: train.Hooks{
				StartMinibatch: layer.StartMinibatch,
				PreOptimizer:   func(*vclock.Proc, int) { layer.PreOptimizerStep() },
				PostOptimizer:  layer.PostOptimizerStep,
			},
			DataSeed: 99,
			OnLoss: func(iter int, loss float32) {
				if r != 0 {
					return
				}
				losses[iter] = loss
				// Fault injection, anchored to training progress: a
				// transient network fault inside minibatch 5, then a
				// sticky CUDA error on rank 2 inside minibatch 11.
				switch iter {
				case 4:
					env.Go("gremlin-net", func(p *vclock.Proc) {
						p.Sleep(20 * vclock.Millisecond)
						fmt.Println("injecting: transient network fault on the gradient all-reduce")
						engine.InjectFault(train.DPCommKey("demo", 0, 0), coord.Generation(), nccl.FaultHang)
					})
				case 10:
					env.Go("gremlin-gpu", func(p *vclock.Proc) {
						p.Sleep(20 * vclock.Millisecond)
						fmt.Println("injecting: sticky CUDA error on rank 2's GPU")
						placement[2].InjectSticky()
					})
				}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		ranks[r] = &core.TransparentRank{Rank: r, Layer: layer, Client: client, Server: server, Worker: worker}
	}
	coord.Start()

	// The "application": a plain training loop. No checkpoint code, no
	// failure handling — it cannot even see the device errors.
	for r := 0; r < world; r++ {
		r := r
		env.Go(fmt.Sprintf("app%d", r), func(p *vclock.Proc) {
			w := ranks[r].Worker
			if err := w.Setup(p, 0); err != nil {
				log.Fatalf("rank %d setup: %v", r, err)
			}
			if err := w.RunIters(p, iters); err != nil {
				log.Fatalf("rank %d: the application saw an error, transparency broken: %v", r, err)
			}
		})
	}

	fmt.Println("Transparent just-in-time recovery demo")
	fmt.Println("======================================")
	if err := env.RunUntil(10 * vclock.Minute); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d iterations completed; the application never saw a failure.\n", iters)
	fmt.Printf("recoveries: %d\n", len(coord.Reports()))
	fmt.Println("rank 0 losses:")
	for i, l := range losses {
		fmt.Printf("  iter %2d: %.6f\n", i, l)
	}
}
