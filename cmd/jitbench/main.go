// Command jitbench regenerates the paper's evaluation tables (Tables 1–8
// plus the §5.1 cost estimates and the §6.5 worked example) from the
// simulation and prints them in the paper's layout, followed by the
// peer-shelter comparison (table 9): steady-state overhead versus
// catastrophic-failure cost for PC_disk, UserJIT+PC_1/day, PeerShelter
// and UserJIT+Peer.
//
// Usage:
//
//	jitbench                              # all tables
//	jitbench -table 5                     # one table (9 = peer comparison,
//	                                      #            10 = chaos suite,
//	                                      #            11 = elastic sweep,
//	                                      #            12 = fleet sweep,
//	                                      #            13 = erasure sweep,
//	                                      #            14 = recovery families)
//	jitbench -iters 20                    # longer measurement runs
//	jitbench -quick                       # small model subset (fast smoke run)
//	jitbench -table 9 -policies PeerShelter,UserJIT+Peer
//	                                      # filter the comparison's policies
//	jitbench -table 10 -mix "gpu-hard:0.3,network-hang:0.7"
//	                                      # chaos suite under a custom fault mix
//	jitbench -table 4 -trace bench.json   # Chrome trace of every measurement run
//	jitbench -parallel 0                  # sweep runs across all CPUs
//	                                      # (results identical to serial)
//	jitbench -bench BENCH_sim.json        # measure the perf point instead of
//	                                      # printing tables
//	jitbench -bench new.json -baseline BENCH_sim.json
//	                                      # ...and warn on >10% regressions
//	jitbench -serve-check                 # prove live streaming observability
//	                                      # leaves tables 12/13 byte-identical
//
// The checked-in reference output lives at docs/jitbench_output.txt;
// regenerate it after changing the simulation with:
//
//	go run ./cmd/jitbench > docs/jitbench_output.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"jitckpt/internal/experiments"
	"jitckpt/internal/failure"
	"jitckpt/internal/trace"
)

func main() {
	table := flag.Int("table", 0, "table number to regenerate (0 = all)")
	iters := flag.Int("iters", 10, "minibatches per measurement run")
	seed := flag.Int64("seed", 1, "simulation seed")
	quick := flag.Bool("quick", false, "run a small model subset")
	policySpec := flag.String("policies", "", "comma-separated policy filter for the peer comparison (e.g. PeerShelter,UserJIT+Peer)")
	mixSpec := flag.String("mix", "", "failure-kind mix for the chaos suite, e.g. \"gpu-hard:0.2,network-hang:0.5\" (empty = paper default)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of every measurement run (one trace pid per run)")
	parallel := flag.Int("parallel", 1, "worker count for sweep grids (0 = GOMAXPROCS, 1 = serial); results are identical either way")
	benchOut := flag.String("bench", "", "measure the simulator's performance point and write it as JSON (skips table output)")
	baseline := flag.String("baseline", "", "prior BENCH_sim.json to compare against (with -bench); warns on >10% regressions")
	serveCheck := flag.Bool("serve-check", false, "differentially verify the live streaming layer: run a table-12 and table-13 sweep cell post-hoc and streamed; rows must be byte-identical")
	flag.Parse()

	workers := *parallel
	if workers == 0 {
		workers = experiments.DefaultWorkers()
	}

	if *serveCheck {
		if err := runServeCheck(); err != nil {
			fmt.Fprintf(os.Stderr, "jitbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *benchOut != "" {
		if err := runBench(*benchOut, *baseline, workers); err != nil {
			fmt.Fprintf(os.Stderr, "jitbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	policies, err := experiments.ParsePolicies(*policySpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jitbench: %v\n", err)
		os.Exit(2)
	}
	mix, err := failure.ParseMix(*mixSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jitbench: %v\n", err)
		os.Exit(2)
	}
	opt := experiments.Options{Iters: *iters, Seed: *seed, Workers: workers}
	if *traceOut != "" {
		opt.Recorder = trace.New()
	}
	runErr := run(*table, opt, *quick, policies, mix)
	if opt.Recorder != nil {
		// Export whatever was recorded even when a table errored: the
		// trace is most valuable exactly then.
		if err := writeTrace(opt.Recorder, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "jitbench: %v\n", err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "jitbench: %v\n", runErr)
		os.Exit(1)
	}
}

// runServeCheck proves the streaming observability layer cannot perturb
// the evaluation: one fleet-sweep cell (table 12) and the erasure sweep
// (table 13) each run twice, post-hoc and observed live by a
// tracestream sink, and the rendered rows must be byte-identical.
func runServeCheck() error {
	for _, check := range []func() (experiments.ServeCheckReport, error){
		experiments.FleetServeCheck,
		experiments.ErasureServeCheck,
	} {
		rep, err := check()
		if err != nil {
			return err
		}
		fmt.Printf("serve-check %s\n", rep)
		if !rep.Identical() {
			return fmt.Errorf("streaming perturbed the %s rows", rep.Table)
		}
	}
	return nil
}

// runBench measures the performance point, writes it to out, and — when a
// baseline is given — prints warnings for metrics that regressed >10%.
// Regressions never fail the run: wall-clock metrics are noisy, and the
// trajectory file exists to be inspected, not to gate.
func runBench(out, baselinePath string, workers int) error {
	fmt.Fprintf(os.Stderr, "jitbench: measuring performance point (workers=%d)...\n", workers)
	report, err := experiments.RunBench(workers)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := experiments.WriteBench(f, report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "jitbench: wrote %d metrics to %s\n", len(report.Metrics), out)
	if baselinePath == "" {
		return nil
	}
	base, err := experiments.ReadBenchFile(baselinePath)
	if err != nil {
		return err
	}
	warnings := experiments.CompareBench(base, report, 0.10)
	if len(warnings) == 0 {
		fmt.Fprintf(os.Stderr, "jitbench: no regressions >10%% vs %s\n", baselinePath)
		return nil
	}
	for _, w := range warnings {
		fmt.Fprintf(os.Stderr, "jitbench: WARNING: %s\n", w)
	}
	return nil
}

// writeTrace exports the recorded events as Chrome trace-event JSON.
func writeTrace(rec *trace.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "jitbench: wrote %d trace events (%d runs) to %s\n",
		rec.Len(), trace.NewQuery(rec).Runs(), path)
	return nil
}

func run(table int, opt experiments.Options, quick bool, policies []experiments.Policy, mix map[failure.Kind]float64) error {
	want := func(n int) bool { return table == 0 || table == n }

	t3models := experiments.Table3Models()
	t4models := experiments.Table4Models()
	t5models := experiments.Table5Models()
	t6models := experiments.Table6Models()
	t7models := experiments.Table7Models()
	if quick {
		t3models = t3models[:2]
		t4models = t4models[:2]
		t5models = t5models[:2]
		t6models = t6models[:2]
		t7models = t7models[:2]
	}

	if want(1) {
		fmt.Println(experiments.Table1().Render())
	}
	if want(2) {
		fmt.Println(experiments.Table2().Render())
	}

	var t3rows []experiments.Table3Row
	var t4rows []experiments.Table4Row
	var err error
	if want(3) || want(8) {
		if t3rows, err = experiments.RunTable3(t3models, opt); err != nil {
			return fmt.Errorf("table 3: %w", err)
		}
	}
	if want(3) {
		fmt.Println(experiments.RenderTable3(t3rows).Render())
	}
	if want(4) || want(8) {
		if t4rows, err = experiments.RunTable4(t4models, opt); err != nil {
			return fmt.Errorf("table 4: %w", err)
		}
	}
	if want(4) {
		fmt.Println(experiments.RenderTable4(t4rows).Render())
	}
	if want(5) {
		rows, err := experiments.RunTable5(t5models, opt)
		if err != nil {
			return fmt.Errorf("table 5: %w", err)
		}
		fmt.Println(experiments.RenderTable5(rows).Render())
	}
	if want(6) {
		rows, err := experiments.RunTable6(t6models, opt)
		if err != nil {
			return fmt.Errorf("table 6: %w", err)
		}
		fmt.Println(experiments.RenderTable6(rows).Render())
	}
	if want(7) {
		rows, err := experiments.RunTable7(t7models, opt)
		if err != nil {
			return fmt.Errorf("table 7: %w", err)
		}
		fmt.Println(experiments.RenderTable7(rows).Render())
	}
	if want(8) {
		fmt.Println(experiments.RenderTable8(experiments.RunTable8(t4rows, t3rows)).Render())
	}
	if want(9) {
		pmodels := experiments.PeerModels()
		if quick {
			pmodels = pmodels[:1]
		}
		rows, err := experiments.RunPeerComparison(pmodels, policies, opt)
		if err != nil {
			return fmt.Errorf("peer comparison: %w", err)
		}
		fmt.Println(experiments.RenderPeerComparison(rows).Render())
	}
	if want(10) {
		copt := experiments.DefaultChaosOptions()
		copt.Mix = mix
		copt.Policies = policies
		copt.Recorder = opt.Recorder
		copt.Workers = opt.Workers
		if quick {
			copt.Seeds = copt.Seeds[:1]
		}
		rows, err := experiments.RunChaos(copt)
		if err != nil {
			return fmt.Errorf("chaos suite: %w", err)
		}
		fmt.Println(experiments.RenderChaos(rows).Render())
	}
	if want(11) {
		eopt := experiments.DefaultElasticOptions()
		eopt.Recorder = opt.Recorder
		eopt.Workers = opt.Workers
		if quick {
			eopt.Seeds = eopt.Seeds[:1]
			eopt.MTBFs = eopt.MTBFs[:1]
		}
		rows, err := experiments.RunElasticSweep(eopt)
		if err != nil {
			return fmt.Errorf("elastic sweep: %w", err)
		}
		fmt.Println(experiments.RenderElasticSweep(rows).Render())
	}
	if want(12) {
		fopt := experiments.DefaultFleetOptions()
		fopt.Recorder = opt.Recorder
		fopt.Workers = opt.Workers
		if quick {
			fopt.Seeds = fopt.Seeds[:1]
			fopt.MTBFs = fopt.MTBFs[:1]
			fopt.HeadlineJobs = 0
		}
		rows, err := experiments.RunFleetSweep(fopt)
		if err != nil {
			return fmt.Errorf("fleet sweep: %w", err)
		}
		fmt.Println(experiments.RenderFleetSweep(rows).Render())
	}
	if want(13) {
		schemes := experiments.ErasureSchemes()
		if quick {
			schemes = schemes[:3]
		}
		rows, err := experiments.RunErasureSweep(schemes, opt)
		if err != nil {
			return fmt.Errorf("erasure sweep: %w", err)
		}
		fmt.Println(experiments.RenderErasureSweep(rows).Render())
	}
	if want(14) {
		ropt := experiments.DefaultRecoveryFamiliesOptions()
		ropt.Recorder = opt.Recorder
		ropt.Workers = opt.Workers
		if quick {
			ropt.Seeds = ropt.Seeds[:1]
			ropt.MTBFs = ropt.MTBFs[:1]
			ropt.Intervals = ropt.Intervals[:1]
			ropt.Sizes = ropt.Sizes[:1]
		}
		rows, err := experiments.RunRecoveryFamilies(ropt)
		if err != nil {
			return fmt.Errorf("recovery-family sweep: %w", err)
		}
		fmt.Println(experiments.RenderRecoveryFamilies(rows).Render())
	}
	if table == 0 {
		fmt.Println(experiments.DollarCostTable().Render())
		fmt.Println(experiments.BertWorkedExample().Render())
	}
	return nil
}
