// Command costmodel explores the §5 analytical failure-overhead model:
// optimal checkpointing frequency, wasted-work fractions for periodic and
// just-in-time checkpointing across GPU counts, the JIT/periodic crossover
// point, and the §5.1 dollar-cost estimates.
//
// Examples:
//
//	costmodel -o 5 -r 9.9 -m 0.418 -f 0.002        # BERT-L-PT constants
//	costmodel -o 18.8 -r 28.6 -m 2.953 -max-n 65536
package main

import (
	"flag"
	"fmt"

	"jitckpt/internal/analysis"
	"jitckpt/internal/metrics"
)

func main() {
	o := flag.Float64("o", 5, "checkpoint overhead per GPU, seconds (Table 4)")
	r := flag.Float64("r", 9.9, "fixed recovery cost per failure per GPU, seconds")
	m := flag.Float64("m", 0.418, "minibatch time, seconds")
	f := flag.Float64("f", 0.002, "failures per GPU per day")
	ojit := flag.Float64("ojit", 0, "JIT steady-state overhead fraction")
	maxN := flag.Int("max-n", 16384, "largest GPU count to evaluate")
	price := flag.Float64("price", 4, "dollars per GPU-hour")
	flag.Parse()

	base := analysis.Params{O: *o, R: *r, M: *m, F: analysis.PerDay(*f), OJit: *ojit}

	t := metrics.NewTable("Wasted GPU time vs scale",
		"N", "c* (/hr)", "interval", "wf Periodic", "wf UserJIT", "wf TransparentJIT", "$/month @N")
	var ns []int
	for n := 4; n <= *maxN; n *= 4 {
		ns = append(ns, n)
	}
	for _, sc := range analysis.ScaleModel(base, ns) {
		p := base
		p.N = sc.N
		// Monthly dollar cost of the periodic policy's wasted time.
		wf := sc.WfPeriodic
		hoursPerMonth := 24.0 * 30
		cost := wf * hoursPerMonth * float64(sc.N) * *price
		interval := "-"
		if sc.CStarPerHour > 0 {
			interval = fmt.Sprintf("%.1f min", 60/sc.CStarPerHour)
		}
		t.Row(sc.N,
			fmt.Sprintf("%.2f", sc.CStarPerHour),
			interval,
			fmt.Sprintf("%.3f%%", 100*sc.WfPeriodic),
			fmt.Sprintf("%.3f%%", 100*sc.WfUserJIT),
			fmt.Sprintf("%.3f%%", 100*sc.WfTransparentJIT),
			fmt.Sprintf("$%.0f", cost))
	}
	fmt.Println(t.Render())

	if n := analysis.CrossoverN(base, *maxN*64); n >= 0 {
		fmt.Printf("User-level JIT beats optimal periodic checkpointing from N = %d GPUs.\n", n)
	} else {
		fmt.Println("User-level JIT does not beat periodic checkpointing below the N limit.")
	}
	fmt.Println()

	fmt.Println("§5.1 reference estimates:")
	fmt.Printf("  1,000 GPUs, 1 error/day, 15 min lost:  $%.0f/month\n", analysis.DollarCost(1000, 1, 0.25, *price))
	fmt.Printf("  10,000 GPUs, 10 errors/day, 15 min lost: $%.0f/month\n", analysis.DollarCost(10000, 10, 0.25, *price))
}
