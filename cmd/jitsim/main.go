// Command jitsim runs one simulated training job under a chosen
// checkpointing policy with an optional injected failure, and reports the
// outcome: wall time, wasted-work accounting, recovery episodes with their
// step breakdown, and the loss trace tail.
//
// Examples:
//
//	jitsim -workload BERT-B-FT -policy transparent -fail network-hang -fail-iter 5
//	jitsim -workload GPT2-18B -policy userjit -fail gpu-hard -iters 12
//	jitsim -workload GPT2-S -policy pc_disk -iters 30 -debug
//	jitsim -workload BERT-B-FT -policy userjit -chaos -fail gpu-hard
//	jitsim -policy pc_disk -fail-rate 200 -mix "gpu-hard:0.5,network-hang:0.5"
//	jitsim -seed 1 -policy jit -trace out.json
//	jitsim -policy userjit -fail gpu-hard -trace-text timeline.txt
//	jitsim -workload GPT2-8B -policy jit+elastic -spares 0 -fail node-down
//	                                  # no spares: shrink + degraded finish
//	jitsim -workload GPT2-18B -policy peer -rs 2,1 -rack 1 -fail node-down
//	                                  # erasure-coded shelter: each rank's
//	                                  # state striped into k=2 data + m=1
//	                                  # parity fragments; restore decodes
//	jitsim -fleet "6xjit+elastic,3xpc_disk,1xpc_disk@5" -fail-rate 200
//	                                  # fleet mode: many concurrent jobs
//	                                  # leasing one arbitrated cluster
//	jitsim -fleet "4xjit+elastic,4xpc_disk" -fail-rate 300 -serve :8080
//	                                  # live observability: GET /metrics,
//	                                  # /fleet, /jobs/{id}/timeline while
//	                                  # the fleet runs (and after)
//
// In -fleet mode the value is a jobs spec of COUNTxPOLICY[@PRIORITY][:ITERS]
// groups; every job runs the fleet-tiny workload on a shared node pool with
// cluster-scoped failures (-fail-rate is per node-day, kinds drawn from the
// node mix), and the report shows per-tenant outcomes plus the exact
// cluster-wide accounting.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"jitckpt/internal/checkpoint"
	"jitckpt/internal/cluster"
	"jitckpt/internal/core"
	"jitckpt/internal/failure"
	"jitckpt/internal/peerckpt"
	"jitckpt/internal/trace"
	"jitckpt/internal/tracestream"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

// policies is the shared registry's key/alias map: any policy added to
// core.Policies is immediately runnable here and in -fleet job specs.
var policies = core.PolicyKeys()

// policyHelp renders the canonical keys in registry order for -policy's
// usage string.
func policyHelp() string {
	keys := make([]string, 0, len(policies))
	for _, pi := range core.Policies() {
		keys = append(keys, pi.Key)
	}
	return strings.Join(keys, "|")
}

func main() {
	wlName := flag.String("workload", "BERT-B-FT", "workload name (see jitbench -table 2)")
	policy := flag.String("policy", "transparent", policyHelp())
	iters := flag.Int("iters", 12, "useful minibatches to complete")
	spares := flag.Int("spares", -1, "spare nodes in the pool (-1 = nodes+1; 0 with an elastic policy exercises shrink)")
	seed := flag.Int64("seed", 1, "simulation seed")
	failKind := flag.String("fail", "", "inject failure: gpu-hard|gpu-sticky|driver-corrupt|network-hang|network-error|node-down|storage-fault|rack-down")
	failIter := flag.Int("fail-iter", 5, "iteration the failure fires in")
	failFrac := flag.Float64("fail-frac", 0.4, "fraction of the minibatch before the failure fires")
	failRank := flag.Int("fail-rank", -1, "rank to fail (-1 = last data-parallel replica)")
	failRate := flag.Float64("fail-rate", 0, "Poisson failure rate in failures per GPU-day (0 = off); kinds drawn from -mix")
	mixSpec := flag.String("mix", "", "failure-kind mix for -fail-rate, e.g. \"gpu-hard:0.2,network-hang:0.5\" (empty = paper default)")
	rsSpec := flag.String("rs", "", "Reed-Solomon stripe geometry \"k,m\" for peer-shelter policies (empty = whole-entry replication)")
	rackSize := flag.Int("rack", 0, "failure-domain width in nodes for single-job runs (0 = default 2)")
	chaos := flag.Bool("chaos", false, "chaos mode: randomly fail/tear/bit-flip checkpoint-store writes (seeded by -seed)")
	chaosP := flag.Float64("chaos-p", 0.12, "per-write fault probability in -chaos mode")
	debug := flag.Bool("debug", false, "print the debug simulation log to stderr")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file (open in chrome://tracing or Perfetto)")
	traceText := flag.String("trace-text", "", "write the compact deterministic text timeline to a file (\"-\" = stdout)")
	lossTail := flag.Int("loss", 5, "loss-trace entries to print")
	stats := flag.Bool("stats", false, "print simulation-kernel event counters and wall-clock throughput")
	fleetSpec := flag.String("fleet", "", "fleet mode: jobs spec of COUNTxPOLICY[@PRIORITY][:ITERS] groups, e.g. \"6xjit+elastic,3xpc_disk@5:20\"")
	fleetNodes := flag.Int("fleet-nodes", 0, "cluster nodes in -fleet mode (0 = 2 per job + 2 spares)")
	fleetRack := flag.Int("fleet-rack", 4, "failure-domain width in nodes for -fleet rack-down faults")
	fleetHorizon := flag.Float64("fleet-horizon", 120, "-fleet simulation horizon in seconds (stragglers are force-finished)")
	repairSec := flag.Float64("repair", 10, "mean node-repair turnaround in seconds for -fleet -fail-rate faults (0 = nodes stay down)")
	serveAddr := flag.String("serve", "", "serve live streaming observability (/metrics, /fleet, /jobs/{id}/timeline) on this address, e.g. \":8080\"; keeps serving after the run until interrupted")
	flag.Parse()

	if *fleetSpec != "" {
		err := runFleet(fleetArgs{
			spec: *fleetSpec, nodes: *fleetNodes, rack: *fleetRack,
			horizonSec: *fleetHorizon, repairSec: *repairSec,
			failRate: *failRate, mixSpec: *mixSpec, seed: *seed, iters: *iters,
			debug: *debug, traceOut: *traceOut, traceText: *traceText, stats: *stats,
			serve: *serveAddr,
		})
		if err != nil {
			fatal(err)
		}
		return
	}

	wl, err := workload.ByName(*wlName)
	if err != nil {
		fatal(err)
	}
	pol, ok := policies[*policy]
	if !ok {
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}
	cfg := core.JobConfig{
		WL: wl, Policy: pol, Iters: *iters, Seed: *seed,
		SpareNodes: wl.Nodes + 1, CollectLoss: true,
	}
	if *spares >= 0 {
		cfg.SpareNodes = *spares
	}
	if *rackSize > 0 {
		cfg.RackSize = *rackSize
	}
	if *rsSpec != "" {
		if !pol.UsesPeerShelter() {
			fatal(fmt.Errorf("-rs needs a peer-shelter policy (peer, jit+peer or peer+elastic), got %q", *policy))
		}
		var k, m int
		if n, err := fmt.Sscanf(*rsSpec, "%d,%d", &k, &m); err != nil || n != 2 {
			fatal(fmt.Errorf("bad -rs %q (want \"k,m\", e.g. \"2,1\")", *rsSpec))
		}
		cfg.Peer = &peerckpt.Params{DataShards: k, ParityShards: m}
	}
	if *debug {
		cfg.Trace = func(at vclock.Time, format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "[%v] %s\n", at, fmt.Sprintf(format, args...))
		}
	}
	var rec *trace.Recorder
	if *traceOut != "" || *traceText != "" {
		rec = trace.New()
		cfg.Recorder = rec
	}
	var linger func()
	if *serveAddr != "" {
		cfg.Stream, linger = startServe(*serveAddr)
	}
	if *failKind != "" {
		kind, ok := failure.KindByName(*failKind)
		if !ok {
			fatal(fmt.Errorf("unknown failure kind %q", *failKind))
		}
		rank := *failRank
		if rank < 0 {
			rank = wl.Topo.Rank(wl.Topo.D-1, 0, 0)
		}
		cfg.IterFailures = []core.IterInjection{{Iter: *failIter, Frac: *failFrac, Rank: rank, Kind: kind}}
	}
	if *failRate > 0 {
		mix, err := failure.ParseMix(*mixSpec)
		if err != nil {
			fatal(err)
		}
		horizon := vclock.Time(*iters) * wl.Minibatch * 3
		cfg.Failures = failure.PoissonPlan(rand.New(rand.NewSource(*seed)), wl.GPUs(), *failRate, horizon, mix)
		fmt.Fprintf(os.Stderr, "jitsim: sampled %d failures over %v (MTBF %v)\n",
			len(cfg.Failures.Injections), horizon, failure.MTBF(wl.GPUs(), *failRate))
	} else if *mixSpec != "" {
		fatal(fmt.Errorf("-mix requires -fail-rate"))
	}
	if *chaos {
		cfg.Chaos = &core.ChaosConfig{
			DiskChaos:    checkpoint.RandomChaos(rand.New(rand.NewSource(*seed*17)), *chaosP),
			ShelterChaos: checkpoint.RandomChaos(rand.New(rand.NewSource(*seed*29)), *chaosP),
		}
	}

	start := time.Now()
	res, err := core.Run(cfg)
	elapsed := time.Since(start)
	if rec != nil {
		// Export whatever was recorded even when the run errored: the
		// trace is most valuable exactly then.
		if werr := writeTraces(rec, *traceOut, *traceText); werr != nil {
			fatal(werr)
		}
	}
	if err != nil {
		fatal(err)
	}
	report(res, *lossTail)
	if *stats {
		s := res.SimStats
		sec := elapsed.Seconds()
		fmt.Printf("kernel:       %d dispatches, %d timer fires, %d triggers, %d spawns\n",
			s.Dispatches, s.TimerFires, s.Triggers, s.Spawns)
		fmt.Printf("throughput:   %.0f events/s, %.0f sim-s per wall-s (%.1fms wall)\n",
			float64(s.Events())/sec, res.WallTime.Sec()/sec, 1000*sec)
	}
	if linger != nil {
		linger()
	}
	if !res.Completed {
		os.Exit(2)
	}
}

// startServe attaches a live stream and serves its HTTP endpoints in the
// background; the returned function blocks until interrupted, so the
// snapshots stay inspectable after the simulation finishes.
func startServe(addr string) (*tracestream.Stream, func()) {
	st := tracestream.New(tracestream.Options{})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	go http.Serve(ln, tracestream.NewServer(st))
	fmt.Fprintf(os.Stderr, "jitsim: serving live metrics on http://%s (endpoints: /metrics /fleet /jobs/{id}/timeline)\n", ln.Addr())
	return st, func() {
		fmt.Fprintln(os.Stderr, "jitsim: run finished; still serving final snapshots — interrupt to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
}

// fleetArgs carries the flag values the fleet mode consumes.
type fleetArgs struct {
	spec                  string
	nodes, rack           int
	horizonSec, repairSec float64
	failRate              float64
	mixSpec               string
	seed                  int64
	iters                 int
	debug                 bool
	traceOut, traceText   string
	stats                 bool
	serve                 string
}

// runFleet runs many concurrent jobs leasing one arbitrated cluster in a
// single shared simulation and reports per-tenant outcomes plus the
// cluster-wide accounting, which must reconcile exactly.
func runFleet(a fleetArgs) error {
	jobs, err := cluster.ParseJobsSpec(a.spec, policies, a.iters)
	if err != nil {
		return err
	}
	nodes := a.nodes
	if nodes == 0 {
		nodes = len(jobs)*2 + 2
	}
	horizon := vclock.Time(a.horizonSec * float64(vclock.Second))
	cfg := cluster.Config{
		Nodes: nodes, PerNode: 2, RackSize: a.rack,
		Seed: a.seed, Horizon: horizon, Jobs: jobs,
	}
	if a.debug {
		cfg.Trace = func(at vclock.Time, format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "[%v] %s\n", at, fmt.Sprintf(format, args...))
		}
	}
	var rec *trace.Recorder
	if a.traceOut != "" || a.traceText != "" {
		rec = trace.New()
		cfg.Recorder = rec
	}
	var linger func()
	if a.serve != "" {
		cfg.Stream, linger = startServe(a.serve)
	}
	if a.failRate > 0 {
		// Empty -mix must stay nil here: PoissonNodePlan substitutes the
		// node-granular default, not the rank-level paper mix.
		var mix map[failure.Kind]float64
		if a.mixSpec != "" {
			if mix, err = failure.ParseMix(a.mixSpec); err != nil {
				return err
			}
		}
		plan := failure.PoissonNodePlan(rand.New(rand.NewSource(a.seed)), nodes, a.failRate, horizon, mix)
		if a.repairSec > 0 {
			plan = plan.WithRepairs(rand.New(rand.NewSource(a.seed*31)),
				vclock.Time(a.repairSec*float64(vclock.Second)), cfg.RackSize)
		}
		cfg.Failures = plan
		fmt.Fprintf(os.Stderr, "jitsim: sampled %d cluster faults over %v\n", len(plan.Injections), horizon)
	} else if a.mixSpec != "" {
		return fmt.Errorf("-mix requires -fail-rate")
	}

	start := time.Now()
	res, err := cluster.Run(cfg)
	elapsed := time.Since(start)
	if rec != nil {
		if werr := writeTraces(rec, a.traceOut, a.traceText); werr != nil {
			return werr
		}
	}
	if err != nil {
		return err
	}
	if err := res.Reconcile(); err != nil {
		return err
	}
	reportFleet(res)
	if a.stats {
		s := res.Fleet.SimStats
		sec := elapsed.Seconds()
		fmt.Printf("kernel:       %d dispatches, %d timer fires, %d triggers, %d spawns\n",
			s.Dispatches, s.TimerFires, s.Triggers, s.Spawns)
		fmt.Printf("throughput:   %.0f events/s, %.0f sim-s per wall-s (%.1fms wall)\n",
			float64(s.Events())/sec, res.Fleet.Wall.Sec()/sec, 1000*sec)
	}
	if linger != nil {
		linger()
	}
	if res.Fleet.JobsCompleted != res.Fleet.JobsTotal {
		os.Exit(2)
	}
	return nil
}

// reportFleet prints the fleet summary followed by one line per tenant.
func reportFleet(res *cluster.Result) {
	f := &res.Fleet
	fmt.Printf("fleet:        %d jobs on %d nodes (%d GPUs), wall %v\n",
		f.JobsTotal, f.Nodes, f.GPUs, f.Wall)
	total := float64(vclock.Time(f.Nodes) * f.Wall)
	if total > 0 {
		fmt.Printf("node-time:    %.1f%% leased, %.1f%% idle-spare, %.1f%% down\n",
			100*float64(f.UsedNodeTime)/total,
			100*float64(f.IdleNodeTime)/total,
			100*float64(f.DownNodeTime)/total)
	}
	fmt.Printf("goodput:      %.1f%% of cluster capacity\n", 100*f.Goodput)
	fmt.Printf("completed:    %d/%d jobs, %d preemptions, %d recovery episodes\n",
		f.JobsCompleted, f.JobsTotal, f.Preemptions, f.RecoveryEpisodes)
	if d := f.RecoveryLatency; d.Count > 0 {
		fmt.Printf("recovery:     mean=%v p50=%v p95=%v max=%v (%d episodes)\n",
			d.Mean, d.P50, d.P95, d.Max, d.Count)
	}
	if f.AppliedInjections+f.SkippedInjections > 0 {
		fmt.Printf("injections:   %d applied, %d skipped\n", f.AppliedInjections, f.SkippedInjections)
	}
	for i := range res.Jobs {
		j := &res.Jobs[i]
		if j.Err != nil {
			fmt.Printf("  %-10s pri=%d FAILED: %v\n", j.Name, j.Priority, j.Err)
			continue
		}
		r := j.Res
		fmt.Printf("  %-10s pri=%d %-16v completed=%-5v wall=%-9v useful=%-9v recoveries=%d node-time=%v\n",
			j.Name, j.Priority, r.Policy, r.Completed, r.WallTime,
			r.Accounting.Useful, len(r.RecoveryLatencies), j.NodeTime)
	}
}

// writeTraces exports the recorded events to the requested files.
func writeTraces(rec *trace.Recorder, chromePath, textPath string) error {
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		if err := trace.WriteChrome(f, rec); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "jitsim: wrote %d trace events to %s\n", rec.Len(), chromePath)
	}
	if textPath != "" {
		w := os.Stdout
		if textPath != "-" {
			f, err := os.Create(textPath)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := trace.WriteText(w, rec, trace.TextOptions{}); err != nil {
			return err
		}
	}
	return nil
}

func report(res *core.RunResult, lossTail int) {
	fmt.Printf("policy:       %v\n", res.Policy)
	fmt.Printf("completed:    %v\n", res.Completed)
	fmt.Printf("wall time:    %v\n", res.WallTime)
	fmt.Printf("minibatch:    %v\n", res.Minibatch)
	fmt.Printf("iterations:   %d executed (incl. redone)\n", res.ItersExecuted)
	fmt.Printf("incarnations: %d\n", res.Incarnations)
	fmt.Printf("accounting:   %s\n", res.Accounting.String())
	if res.JITCheckpointTime > 0 {
		fmt.Printf("jit ckpt:     %v, restore: %v\n", res.JITCheckpointTime, res.RestoreTime)
	}
	if p := res.Peer; p.Encodes > 0 || p.Decodes > 0 {
		fmt.Printf("peer codec:   %d encodes (%v), %d decodes (%v), %d fragment erasures\n",
			p.Encodes, p.EncodeTime, p.Decodes, p.DecodeTime, p.FragErasures)
	}
	for i, rep := range res.Reports {
		fmt.Printf("recovery #%d:  kind=%s total=%v healthy=%v failed=%v\n",
			i+1, rep.Kind, rep.Total(), rep.HealthyAvg, rep.FailedAvg)
		var steps []string
		for _, ph := range rep.Phases {
			steps = append(steps, fmt.Sprintf("%s=%v", ph.Name, ph.Dur))
		}
		fmt.Printf("              %s\n", strings.Join(steps, " "))
	}
	if len(res.Loss) > 0 {
		iters := make([]int, 0, len(res.Loss))
		for it := range res.Loss {
			iters = append(iters, it)
		}
		sort.Ints(iters)
		if len(iters) > lossTail {
			iters = iters[len(iters)-lossTail:]
		}
		fmt.Printf("loss tail:   ")
		for _, it := range iters {
			fmt.Printf(" [%d]=%.6f", it, res.Loss[it])
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "jitsim: %v\n", err)
	os.Exit(1)
}
