// Streaming-overhead measurement: the chaos grid (the BENCH_sim.json
// headline workload) run traced with and without a live tracestream sink
// attached. The delta isolates the streaming layer itself — ring pushes,
// span finalization, window rollups — from the cost of tracing, which
// predates it and is paid either way once a recorder is attached.
package jitckpt_test

import (
	"runtime"
	"testing"
	"time"

	"jitckpt/internal/experiments"
	"jitckpt/internal/trace"
	"jitckpt/internal/tracestream"
)

// chaosGridTraced runs the serial chaos grid with a retention-free
// recorder; when stream is true a live sink consumes every event.
func chaosGridTraced(stream bool) error {
	opt := experiments.DefaultChaosOptions()
	opt.Workers = 1
	rec := trace.New()
	rec.SetRetain(false)
	if stream {
		rec.SetSink(tracestream.New(tracestream.Options{}))
	}
	opt.Recorder = rec
	_, err := experiments.RunChaos(opt)
	return err
}

// BenchmarkStreamingOverhead reports the chaos grid's wall time with the
// streaming sink off vs on; compare the two sub-benchmarks' ns/op.
func BenchmarkStreamingOverhead(b *testing.B) {
	run := func(b *testing.B, stream bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := chaosGridTraced(stream); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// measureStreamingOverhead estimates the streaming layer's relative
// wall-time cost: interleaved min-of-N times of the traced chaos grid
// with the sink detached vs attached. Min-of-N because the minimum is
// the noise-robust estimator of intrinsic cost on a shared CI machine;
// the pairs are interleaved so frequency drift hits both arms equally.
func measureStreamingOverhead(t *testing.T, rounds int) float64 {
	t.Helper()
	minOff, minOn := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < rounds; i++ {
		// Alternate which arm runs first: noise that correlates with
		// position inside a round (a periodic background task, thermal
		// throttle onset) must not always land on the same arm.
		order := []bool{false, true}
		if i%2 == 1 {
			order = []bool{true, false}
		}
		for _, stream := range order {
			// Equalize heap state between arms: a collection triggered by
			// the previous run's garbage must not land inside this one.
			runtime.GC()
			start := time.Now()
			if err := chaosGridTraced(stream); err != nil {
				t.Fatal(err)
			}
			d := time.Since(start)
			if stream && d < minOn {
				minOn = d
			}
			if !stream && d < minOff {
				minOff = d
			}
		}
	}
	overhead := float64(minOn-minOff) / float64(minOff)
	t.Logf("chaos grid traced: sink off %v, sink on %v, overhead %.2f%%", minOff, minOn, 100*overhead)
	return overhead
}

// TestStreamingOverheadGuard enforces the ≤5% budget on the streaming
// layer. Shared machines see multi-second load waves larger than the
// budget itself, and a wave can only inflate the estimate — so the guard
// takes up to three independent measurements and passes on the first
// that fits. It fails only when every attempt exceeds the budget, i.e.
// when the overhead is real rather than one unlucky window.
func TestStreamingOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock guard skipped in -short")
	}
	const attempts, rounds = 3, 8
	best := 1.0
	for a := 0; a < attempts; a++ {
		overhead := measureStreamingOverhead(t, rounds)
		if overhead < best {
			best = overhead
		}
		if best <= 0.05 {
			return
		}
	}
	t.Errorf("streaming overhead %.2f%% exceeds the 5%% budget in all %d attempts",
		100*best, attempts)
}
