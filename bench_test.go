// Package jitckpt's root benchmarks regenerate every table and figure of
// the paper's evaluation (§5–§6). Each BenchmarkTableN drives the same
// experiment code as cmd/jitbench and reports the headline measured
// quantity via b.ReportMetric, so `go test -bench . -benchmem` doubles as
// the reproduction run. Absolute times are virtual (simulated) seconds;
// the ns/op column measures only the simulator's own speed.
package jitckpt_test

import (
	"testing"

	"jitckpt/internal/analysis"
	"jitckpt/internal/core"
	"jitckpt/internal/experiments"
	"jitckpt/internal/failure"
	"jitckpt/internal/vclock"
	"jitckpt/internal/workload"
)

// BenchmarkTable3Overheads measures steady-state checkpointing overhead at
// the optimal frequency (Table 3) for a representative small and large
// model, reporting the PC_disk and JIT overhead fractions.
func BenchmarkTable3Overheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable3([]string{"BERT-B-FT", "GPT2-XL"}, experiments.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rows[0].PCDisk, "BERT-PCdisk-%")
		b.ReportMetric(100*rows[1].PCDisk, "GPT2XL-PCdisk-%")
		b.ReportMetric(100*rows[0].JITC, "BERT-JIT-%")
	}
}

// BenchmarkTable4UserJIT measures user-level JIT checkpoint and restore
// times (Table 4).
func BenchmarkTable4UserJIT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable4([]string{"BERT-L-PT", "GPT2-XL"}, experiments.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Ckpt.Sec(), "BERT-ckpt-s")
		b.ReportMetric(rows[0].Restore.Sec(), "BERT-restore-s")
		b.ReportMetric(rows[1].Recovery.Sec(), "GPT2XL-recovery-s")
	}
}

// BenchmarkTable5Transient measures transparent transient-error recovery
// (Table 5).
func BenchmarkTable5Transient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable5([]string{"BERT-B-FT/V100x8", "GPT2-S/V100x8"}, experiments.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Recovery.Sec(), "BERT-recovery-s")
		b.ReportMetric(rows[1].Recovery.Sec(), "GPT2S-recovery-s")
	}
}

// BenchmarkTable6Hard measures transparent hard-error recovery (Table 6),
// split by healthy vs failed GPU ranks.
func BenchmarkTable6Hard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable6([]string{"BERT-B-FT/V100x8"}, experiments.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Healthy.Sec(), "healthy-s")
		b.ReportMetric(rows[0].Failed.Sec(), "failed-s")
	}
}

// BenchmarkTable7Breakdown measures the transient-recovery step breakdown
// (Table 7), reporting the dominant communicator re-initialization step.
func BenchmarkTable7Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable7([]string{"GPT2-S/V100x8"}, experiments.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, ph := range rows[0].Phases {
			if ph.Name == "comm-init" {
				b.ReportMetric(ph.Dur.Sec(), "comm-init-s")
			}
			if ph.Name == "teardown" {
				b.ReportMetric(ph.Dur.Sec(), "teardown-s")
			}
		}
	}
}

// BenchmarkTable8Scaling evaluates the §5 analytical scaling (Table 8) at
// N = 1024, reporting the wasted-time fractions whose gap is the paper's
// headline claim.
func BenchmarkTable8Scaling(b *testing.B) {
	base := analysis.Params{O: 5, F: analysis.PerDay(experiments.FailureRate), R: 9.9, M: 0.418}
	for i := 0; i < b.N; i++ {
		rows := analysis.ScaleModel(base, []int{4, 1024, 8192})
		b.ReportMetric(100*rows[1].WfPeriodic, "wf-periodic-1024-%")
		b.ReportMetric(100*analysis.WastedFraction(analysis.WastedUserJIT(withN(base, 1024))), "wf-userjit-1024-%")
	}
}

func withN(p analysis.Params, n int) analysis.Params {
	p.N = n
	return p
}

// BenchmarkFig1EndToEnd is the paper's Figure 1 scenario end to end: a
// failure strikes, healthy replicas checkpoint just in time, and the job
// resumes having redone at most one minibatch. The reported metric is the
// number of redone minibatches (JIT's bound is 1).
func BenchmarkFig1EndToEnd(b *testing.B) {
	wl, err := workload.ByName("BERT-B-FT")
	if err != nil {
		b.Fatal(err)
	}
	const iters = 10
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.JobConfig{
			WL: wl, Policy: core.PolicyUserJIT, Iters: iters, Seed: int64(i + 1),
			SpareNodes:   2,
			IterFailures: []core.IterInjection{{Iter: 5, Frac: 0.5, Rank: 7, Kind: failure.GPUHard}},
		})
		if err != nil || !res.Completed {
			b.Fatalf("run %d failed: %v", i, err)
		}
		b.ReportMetric(float64(res.ItersExecuted-iters), "redone-minibatches")
		b.ReportMetric(res.JITCheckpointTime.Sec(), "jit-ckpt-s")
	}
}

// BenchmarkDollarCost evaluates the §5.1 cost estimator.
func BenchmarkDollarCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := analysis.DollarCost(10000, 10, 0.25, 4)
		b.ReportMetric(c/1e6, "10kGPU-$M-per-month")
	}
}

// --- Simulator kernel speed (the BENCH_sim.json trajectory) ---

// BenchmarkChaosGrid runs the full table 10 chaos grid — the hot-path
// workload the BENCH_sim.json perf trajectory tracks. ns/op, allocs/op
// and B/op here are the simulator's own cost; sim-events/s is the kernel
// throughput metric the committed baseline pins.
func BenchmarkChaosGrid(b *testing.B) {
	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		var events uint64
		for i := 0; i < b.N; i++ {
			opt := experiments.DefaultChaosOptions()
			opt.Workers = workers
			rows, err := experiments.RunChaos(opt)
			if err != nil {
				b.Fatal(err)
			}
			events = 0
			for _, row := range rows {
				events += row.Sim.Events()
			}
		}
		b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "sim-events/s")
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, experiments.DefaultWorkers()) })
}

// BenchmarkSteadyTraining measures a failure-free 4-rank training run —
// the allocs/op column is what the buffer-reuse work in internal/train
// drives toward zero marginal cost per iteration.
func BenchmarkSteadyTraining(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.JobConfig{
			WL: experiments.ChaosWorkload(), Policy: core.PolicyNone, Iters: 50, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("steady run incomplete")
		}
	}
}

// BenchmarkPerfPoint runs the same measurement cmd/jitbench -bench uses
// to produce BENCH_sim.json, so a plain `go test -bench PerfPoint` shows
// the current trajectory point inline.
func BenchmarkPerfPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := experiments.RunBench(1)
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range []string{"chaos_grid_events_per_sec", "train_allocs_per_iter", "vclock_sleep_cycle_ns"} {
			if m, ok := report.Metric(name); ok {
				b.ReportMetric(m.Value, m.Name)
			}
		}
	}
}

// --- Ablations (DESIGN.md "design choices worth ablating") ---

// BenchmarkAblationWatchdogTimeout sweeps the hang-detection timeout: a
// longer timeout delays detection (wall time grows) but changes nothing
// about the recovery itself.
func BenchmarkAblationWatchdogTimeout(b *testing.B) {
	wl, err := workload.ByName("BERT-B-FT/V100x8")
	if err != nil {
		b.Fatal(err)
	}
	for _, timeout := range []vclock.Time{2 * vclock.Second, 10 * vclock.Second, 30 * vclock.Second} {
		timeout := timeout
		b.Run(timeout.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.JobConfig{
					WL: wl, Policy: core.PolicyTransparentJIT, Iters: 10, Seed: 1,
					HangTimeout:  timeout,
					IterFailures: []core.IterInjection{{Iter: 5, Frac: 0.4, Rank: 3, Kind: failure.NetworkHang}},
				})
				if err != nil || !res.Completed {
					b.Fatalf("run failed: %v", err)
				}
				b.ReportMetric(res.WallTime.Sec(), "wall-s")
				b.ReportMetric(res.Reports[0].Total().Sec(), "recovery-s")
			}
		})
	}
}

// BenchmarkAblationRecoveryStrategy compares the three §4.2 reset
// strategies: retain buffers (network hang), copy-to-host around a proxy
// restart (driver corruption), and replica copy (sticky error).
func BenchmarkAblationRecoveryStrategy(b *testing.B) {
	wl, err := workload.ByName("GPT2-S/V100x8")
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		kind failure.Kind
	}{
		{"S1-retain-buffers", failure.NetworkHang},
		{"S2-host-roundtrip", failure.DriverCorrupt},
		{"S3-replica-copy", failure.GPUSticky},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.JobConfig{
					WL: wl, Policy: core.PolicyTransparentJIT, Iters: 10, Seed: 1,
					IterFailures: []core.IterInjection{{Iter: 5, Frac: 0.4, Rank: 3, Kind: c.kind}},
				})
				if err != nil || !res.Completed || len(res.Reports) == 0 {
					b.Fatalf("run failed: err=%v", err)
				}
				b.ReportMetric(res.Reports[0].Total().Sec(), "recovery-s")
			}
		})
	}
}

// BenchmarkAblationCheckpointInterval sweeps the periodic checkpointing
// interval under an injected failure, exposing the §5.2 trade-off the
// optimal frequency balances: frequent checkpoints pay steady-state stalls
// but lose little work; infrequent checkpoints redo many minibatches.
func BenchmarkAblationCheckpointInterval(b *testing.B) {
	wl, err := workload.ByName("BERT-B-FT")
	if err != nil {
		b.Fatal(err)
	}
	const iters = 40
	for _, c := range []struct {
		name     string
		interval vclock.Time
	}{
		{"every-4-minibatches", 4 * wl.Minibatch},
		{"every-12-minibatches", 12 * wl.Minibatch},
		{"every-36-minibatches", 36 * wl.Minibatch},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.JobConfig{
					WL: wl, Policy: core.PolicyPCMem, Iters: iters, Seed: 1,
					CkptInterval: c.interval, SpareNodes: 2,
					IterFailures: []core.IterInjection{{Iter: 35, Frac: 0.5, Rank: 7, Kind: failure.GPUHard}},
				})
				if err != nil || !res.Completed {
					b.Fatalf("run failed: %v", err)
				}
				b.ReportMetric(res.Accounting.CkptStall.Sec(), "ckpt-stall-s")
				b.ReportMetric(float64(res.ItersExecuted-iters), "redone-minibatches")
			}
		})
	}
}
