module jitckpt

go 1.22
